"""Deterministic discrete-event scheduler: the concurrency substrate.

Everything concurrent in the simulation — interleaved attach pipelines,
two VMs' virtqueues draining side by side, a serverless autoscaler
racing a debugger — runs on this scheduler.  It is a classic
discrete-event core (gem5-style) built for *replayability*:

* **Priority queue of timed events.**  Each entry is keyed by
  ``(time_ns, priority, tiebreak, seq)``.  ``tiebreak`` is drawn from a
  seed-derived :mod:`repro.sim.rng` stream, so events scheduled for the
  *same* instant execute in a seed-determined order rather than in
  insertion order: changing the seed explores a different (but still
  exactly reproducible) interleaving, which is what makes the chaos
  suite's concurrency coverage meaningful.  ``seq`` is a monotonic
  counter that makes every key unique, so heap comparisons never fall
  through to the callbacks.
* **The existing virtual** :class:`~repro.sim.clock.Clock` **is the
  time source.**  The scheduler never moves time backwards: an event's
  callback may itself charge costs (advancing the clock inline), and a
  later-queued event that is now "in the past" simply runs at the
  current time.  All pre-scheduler ``clock.advance()`` call sites keep
  working unchanged.
* **Cooperative tasks, no threads.**  A :class:`Task` wraps a plain
  generator.  Yield protocol:

  - ``yield`` / ``yield "label"`` — reschedule cooperatively at the
    current time (other ready events may run in between);
  - ``yield <int ns>`` — sleep that many virtual nanoseconds;
  - ``yield <Waitable>`` — park until the waitable completes; the
    waitable's result becomes the value of the ``yield`` expression,
    its error is re-raised inside the generator.

  No wall clock, no threads, no OS scheduler: the interleaving is a
  pure function of (event times, priorities, seed), which is why two
  runs with the same seed produce bit-identical :class:`Event` streams.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim import rng as simrng
from repro.sim.clock import Clock


class SchedulerError(RuntimeError):
    """Misuse of the scheduler (bad yield, nested run, runaway loop)."""


class Waitable:
    """A one-shot completion a task can ``yield`` on."""

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Waitable"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def result(self) -> Any:
        """The completion value; re-raises the stored error, if any."""
        if not self._done:
            raise SchedulerError("waitable has not completed")
        if self._error is not None:
            raise self._error
        return self._result

    def add_done_callback(self, fn: Callable[["Waitable"], None]) -> None:
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _finish(self, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        if self._done:
            raise SchedulerError("waitable completed twice")
        self._done = True
        self._result = result
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Completion(Waitable):
    """Externally-settable :class:`Waitable` (a one-shot event/future)."""

    def set(self, result: Any = None) -> None:
        if not self._done:
            self._finish(result=result)

    def fail(self, error: BaseException) -> None:
        if not self._done:
            self._finish(error=error)


class Timer:
    """Handle for one scheduled event; ``cancel()`` elides it."""

    __slots__ = ("time_ns", "label", "fn", "cancelled", "fired")

    def __init__(self, time_ns: int, fn: Callable[[], None], label: str):
        self.time_ns = time_ns
        self.label = label
        self.fn = fn
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "armed")
        return f"Timer({self.label!r} @ {self.time_ns} ns, {state})"


class PeriodicTimer:
    """Fires ``fn`` every ``period_ns`` until cancelled (drift-free)."""

    def __init__(self, sched: "Scheduler", period_ns: int,
                 fn: Callable[[], None], label: str):
        if period_ns <= 0:
            raise SchedulerError("periodic timer needs a positive period")
        self._sched = sched
        self.period_ns = period_ns
        self.fn = fn
        self.label = label
        self.cancelled = False
        self.fire_count = 0
        self._arm(sched.clock.now + period_ns)

    def _arm(self, when_ns: int) -> None:
        self._timer = self._sched.at(when_ns, self._fire, label=self.label)

    def _fire(self) -> None:
        if self.cancelled:
            return
        due = self._timer.time_ns
        self.fire_count += 1
        self.fn()
        if not self.cancelled:
            # Next fire is period-aligned to the *due* time, not to
            # whenever fn() finished charging costs (at() clamps to now).
            self._arm(due + self.period_ns)

    def cancel(self) -> None:
        self.cancelled = True
        self._timer.cancel()


class Task(Waitable):
    """A cooperative generator task driven by the scheduler."""

    def __init__(self, sched: "Scheduler", gen: Generator, label: str):
        super().__init__()
        self._sched = sched
        self._gen = gen
        self.label = label
        self.steps = 0
        self.cancelled = False

    def cancel(self) -> None:
        """Close the generator; waiters see a result of ``None``."""
        if self._done:
            return
        self.cancelled = True
        self._gen.close()
        self._finish(result=None)

    def _step(self, value: Any = None,
              throw: Optional[BaseException] = None) -> None:
        if self._done:
            return
        self.steps += 1
        obs = self._sched.obs
        turn = None
        if obs is not None:
            self._sched._m_turns.inc()
            turn = obs.spans.begin(
                "sched.turn", track=f"task:{self.label}", turn=self.steps
            )
        try:
            if throw is not None:
                yielded = self._gen.throw(throw)
            else:
                yielded = self._gen.send(value)
        except StopIteration as stop:
            if turn is not None:
                obs.spans.end(turn, outcome="return")
            self._finish(result=stop.value)
            return
        except BaseException as exc:
            if turn is not None:
                obs.spans.end(turn, outcome=type(exc).__name__)
            self._finish(error=exc)
            return
        if turn is not None:
            obs.spans.end(turn)
        self._park(yielded)

    def _park(self, yielded: Any) -> None:
        sched = self._sched
        if yielded is None or isinstance(yielded, str):
            label = yielded if isinstance(yielded, str) else self.label
            sched.after(0, self._step, label=label)
        elif isinstance(yielded, bool):
            raise SchedulerError(f"task {self.label!r} yielded a bool")
        elif isinstance(yielded, int):
            if yielded < 0:
                raise SchedulerError(
                    f"task {self.label!r} yielded a negative sleep"
                )
            sched.after(yielded, self._step, label=self.label)
        elif isinstance(yielded, Waitable):
            yielded.add_done_callback(self._resume_from)
        else:
            raise SchedulerError(
                f"task {self.label!r} yielded unsupported {yielded!r}"
            )

    def _resume_from(self, waitable: Waitable) -> None:
        if waitable.error is not None:
            self._sched.after(
                0, lambda: self._step(throw=waitable.error), label=self.label
            )
        else:
            self._sched.after(
                0, lambda: self._step(waitable._result), label=self.label
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "running"
        return f"Task({self.label!r}, {state}, steps={self.steps})"


class Scheduler:
    """Deterministic discrete-event loop over a virtual clock."""

    def __init__(self, clock: Optional[Clock] = None, label: str = "sched",
                 master_seed: int = simrng.MASTER_SEED, obs: Any = None):
        self.clock = clock if clock is not None else Clock()
        self.label = label
        self._tiebreak = simrng.stream(f"sched:{label}", master_seed)
        self._heap: List[Tuple[int, int, int, int, Timer]] = []
        self._seq = itertools.count()
        #: True while an event loop (run_until_idle/run_until/run) is
        #: dispatching — the flag :meth:`HostKernel.wakeup` gates on.
        self.running = False
        #: total events dispatched over the scheduler's lifetime
        self.events_run = 0
        #: observability hub (``repro.obs.Observability``) or ``None``:
        #: when set, every task turn records a span on that task's
        #: track and dispatch/spawn counts land in the registry.
        self.obs = obs
        if obs is not None:
            scope = obs.metrics.scope("sched", loop=label)
            self._m_events = scope.counter("events_dispatched")
            self._m_spawned = scope.counter("tasks_spawned")
            self._m_turns = scope.counter("task_turns")
        else:
            self._m_events = self._m_spawned = self._m_turns = None

    # -- scheduling primitives ------------------------------------------------

    @property
    def now(self) -> int:
        return self.clock.now

    def pending(self) -> int:
        """Events still queued (cancelled entries included until popped)."""
        return len(self._heap)

    def at(self, time_ns: int, fn: Callable[[], None],
           label: str = "event", priority: int = 0) -> Timer:
        """Schedule ``fn`` at absolute virtual time ``time_ns``.

        Times in the past are clamped to *now* — the clock never runs
        backwards.  Ties on (time, priority) are broken by a
        seed-derived random draw, then by insertion order.
        """
        when = max(time_ns, self.clock.now)
        timer = Timer(when, fn, label)
        heapq.heappush(
            self._heap,
            (when, priority, self._tiebreak.getrandbits(32), next(self._seq), timer),
        )
        return timer

    def after(self, delta_ns: int, fn: Callable[[], None],
              label: str = "event", priority: int = 0) -> Timer:
        return self.at(self.clock.now + delta_ns, fn, label=label, priority=priority)

    def call_soon(self, fn: Callable[[], None], label: str = "event") -> Timer:
        return self.after(0, fn, label=label)

    def every(self, period_ns: int, fn: Callable[[], None],
              label: str = "timer") -> PeriodicTimer:
        return PeriodicTimer(self, period_ns, fn, label)

    def spawn(self, gen: Generator, label: str = "task") -> Task:
        """Wrap a generator into a :class:`Task`; first step runs soon."""
        task = Task(self, gen, label)
        if self._m_spawned is not None:
            self._m_spawned.inc()
        self.call_soon(task._step, label=f"start:{label}")
        return task

    # -- event loops ----------------------------------------------------------

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Dispatch events until the queue empties; returns the count."""
        return self._loop(lambda: bool(self._heap), max_events)

    def run_until(self, deadline_ns: int, max_events: int = 1_000_000) -> int:
        """Dispatch events due up to ``deadline_ns``, then land there."""
        ran = self._loop(
            lambda: bool(self._heap) and self._heap[0][0] <= deadline_ns,
            max_events,
        )
        if self.clock.now < deadline_ns:
            self.clock.advance(deadline_ns - self.clock.now)
        return ran

    def run(self, *waitables: Waitable, max_events: int = 1_000_000) -> List[Any]:
        """Dispatch until every given waitable completes.

        Returns their results in order (errors re-raise).  Raises if
        the queue drains with a waitable still pending — a deadlocked
        task, usually one parked on a completion nobody will set.
        """
        outstanding = lambda: any(not w.done for w in waitables)  # noqa: E731
        self._loop(lambda: outstanding() and bool(self._heap), max_events)
        if outstanding():
            stuck = [w for w in waitables if not w.done]
            raise SchedulerError(
                f"scheduler went idle with {len(stuck)} waitable(s) pending: "
                + ", ".join(getattr(w, "label", repr(w)) for w in stuck)
            )
        return [w.result() for w in waitables]

    def _loop(self, keep_going: Callable[[], bool], max_events: int) -> int:
        if self.running:
            raise SchedulerError("scheduler loop is already running")
        self.running = True
        ran = 0
        try:
            while keep_going():
                if ran >= max_events:
                    raise SchedulerError(
                        f"scheduler exceeded {max_events} events (runaway loop?)"
                    )
                ran += self._dispatch_next()
            return ran
        finally:
            self.running = False

    def _dispatch_next(self) -> int:
        time_ns, _prio, _tb, _seq, timer = heapq.heappop(self._heap)
        if timer.cancelled:
            return 0
        if time_ns > self.clock.now:
            self.clock.advance(time_ns - self.clock.now)
        timer.fired = True
        self.events_run += 1
        if self._m_events is not None:
            self._m_events.inc()
        timer.fn()
        return 1
