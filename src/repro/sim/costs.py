"""Calibrated cost model for the simulated host/guest stack.

The original paper measures a real Intel i9-9900K + NVMe P4600 testbed.
We replace the hardware with a cost model that charges virtual time for
the *mechanisms* the paper identifies as performance-relevant:

* VMEXITs and interrupt injection (every VirtIO kick/completion),
* host context switches (qemu-blk does 2 per request, vmsh-blk 4 —
  the paper measures "twice as many context switches" for vmsh-blk),
* ptrace stops (the ``wrap_syscall`` dispatch interposes on every
  ``KVM_RUN`` return of the hypervisor — the 6x IOPS hit in Fig. 6b),
* memory copies: in-process memcpy vs. cross-process
  ``process_vm_readv``/``writev`` (per-call overhead is what makes
  large direct-IO requests up to ~3.7x slower on vmsh-blk in Fig. 5,
  because a 2 MB request spans 512 descriptor pages),
* guest page-cache hits vs. device round trips (why metadata-heavy
  Phoronix workloads show no vmsh-blk overhead),
* 9p RPC fan-out (several protocol round trips per file op — the
  7.8x IOPS loss of qemu-9p in Fig. 6b).

All constants are integers in nanoseconds (or bytes/us for bandwidth)
so runs are exactly reproducible.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.obs import Observability
from repro.obs.metrics import Counter
from repro.sim.clock import Clock


@dataclass
class CostParams:
    """Tunable latency/bandwidth constants (ns and bytes-per-us)."""

    # Generic host kernel costs
    syscall_ns: int = 500
    host_ctx_switch_ns: int = 2_000
    sched_wakeup_ns: int = 1_500

    # Virtualisation costs
    vmexit_ns: int = 1_200          # VMEXIT + in-kernel KVM handling
    irq_inject_ns: int = 1_000      # interrupt injection + guest ISR entry
    eventfd_signal_ns: int = 600    # irqfd/ioeventfd signalling
    ioregionfd_msg_ns: int = 2_500  # MMIO exit forwarded over the socket
    ptrace_stop_ns: int = 12_000    # stop + register inspection + resume

    # Memory copy paths
    memcpy_bytes_per_us: int = 8_000        # in-process memcpy, 8 GB/s
    procvm_bytes_per_us: int = 6_000        # process_vm_readv/writev, 6 GB/s
    bytewise_bytes_per_us: int = 500      # unoptimised chunked copy path
    procvm_call_ns: int = 2_900             # fixed cost per process_vm_* call
    procvm_seg_ns: int = 2_400              # per extra iovec segment in one call
    memcpy_call_ns: int = 120               # fixed cost per in-process copy

    # Storage
    disk_service_ns: int = 8_000            # NVMe per-request service time
    disk_bytes_per_us: int = 3_200          # NVMe bandwidth, 3.2 GB/s
    host_fs_op_ns: int = 3_000              # host fs metadata op
    guest_fs_op_ns: int = 2_200             # guest fs metadata op (in-kernel)
    guest_block_layer_ns: int = 900         # guest block-layer submit path
    pagecache_hit_ns_per_page: int = 200
    pagecache_insert_ns_per_page: int = 350

    # 9p (two stacked file systems, multiple RPCs per operation)
    p9_rpc_ns: int = 50_000
    p9_rpcs_per_data_op: int = 4            # walk/open/rw/clunk
    p9_rpcs_per_meta_op: int = 3

    # Serverless control plane (§6.5 vHive)
    faas_route_ns: int = 3_000_000          # route a request to a *warm* microVM
    faas_cold_start_ns: int = 125_000_000   # boot + handler init of a cold microVM

    # Snapshot / restore / migrate (firecracker-snapshot-style, REAP-range
    # restore latency): baking walks resident pages once; restoring maps a
    # prebaked image and resumes vCPUs, an order of magnitude under a boot.
    vm_snapshot_capture_ns: int = 35_000_000   # quiesce + walk + serialize
    vm_snapshot_restore_ns: int = 18_000_000   # map image + rearm routes + resume
    vm_migrate_ns: int = 80_000_000            # copy RAM + disk to the peer host
    faas_snapshot_restore_ns: int = 18_000_000  # pool hit: restore, not boot

    # Console / tty / network
    tty_layer_ns: int = 20_000              # line discipline + shell turnaround
    shell_exec_ns: int = 180_000            # shell parses and echoes a command
    net_loopback_rtt_ns: int = 150_000
    ssh_crypto_ns_per_msg: int = 245_000    # encrypt+decrypt+MAC, per message
    vmsh_console_hop_ns: int = 305_000      # vqueue kick -> vmsh -> pts wakeup

    # vmsh-net fabric defaults (per-link; latency is a scheduler delay,
    # serialization is frame bytes over the link rate)
    net_link_latency_ns: int = 50_000       # one-way propagation per hop
    net_link_bytes_per_us: int = 1_250      # 10 GbE-class link
    guest_net_layer_ns: int = 700           # guest net-stack submit path


class CounterView(MutableMapping):
    """``CostModel.counters`` shim: a mapping view over registry counters.

    Pre-PR5 callers treated ``counters`` as a plain ``Dict[str, int]``;
    the storage now lives in the shared :class:`MetricsRegistry` (under
    the ``costs`` subsystem) so exporters and snapshots see the same
    numbers.  The view keeps the dict API — ``get``/``items``/index
    assignment/``clear`` — working against the registry-backed cache.
    """

    __slots__ = ("_model",)

    def __init__(self, model: "CostModel") -> None:
        self._model = model

    def __getitem__(self, name: str) -> int:
        return self._model._cache[name].value

    def __setitem__(self, name: str, value: int) -> None:
        self._model._counter(name).value = value

    def __delitem__(self, name: str) -> None:
        self._model._cache.pop(name)
        self._model.metrics.discard(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._model._cache)

    def __len__(self) -> int:
        return len(self._model._cache)

    def __repr__(self) -> str:
        return repr(dict(self))


class CostModel:
    """Charges virtual time to a :class:`Clock` and keeps counters.

    Counters let tests assert *mechanisms* (e.g. that vmsh-blk incurs
    twice the context switches of qemu-blk) rather than only outcomes.
    They are registry-backed: ``self.metrics`` is the ``costs`` scope of
    the shared observability hub (``self.obs``), and ``self.counters``
    is a dict-compatible view onto it for legacy call sites.
    """

    def __init__(
        self,
        clock: Clock,
        params: CostParams | None = None,
        obs: Observability | None = None,
    ):
        self.clock = clock
        self.p = params if params is not None else CostParams()
        self.obs = obs if obs is not None else Observability(clock)
        self.metrics = self.obs.metrics.scope("costs")
        self._cache: Dict[str, Counter] = {}
        self.counters = CounterView(self)

    # -- accounting helpers -------------------------------------------------

    def _counter(self, name: str) -> Counter:
        c = self._cache.get(name)
        if c is None:
            c = self.metrics.counter(name)
            self._cache[name] = c
        return c

    def _charge(self, counter: str, ns: int) -> None:
        self._counter(counter).value += 1
        self.clock.advance(ns)

    def bump(self, counter: str, n: int = 1) -> None:
        """Increment a counter without advancing the clock."""
        self._counter(counter).value += n

    def count(self, counter: str) -> int:
        c = self._cache.get(counter)
        return 0 if c is None else c.value

    def reset_counters(self) -> None:
        for name in self._cache:
            self.metrics.discard(name)
        self._cache.clear()

    # -- host kernel ---------------------------------------------------------

    def syscall(self) -> None:
        self._charge("syscall", self.p.syscall_ns)

    def context_switch(self) -> None:
        self._charge("ctx_switch", self.p.host_ctx_switch_ns)

    def sched_wakeup(self) -> None:
        self._charge("sched_wakeup", self.p.sched_wakeup_ns)

    def ptrace_stop(self) -> None:
        self._charge("ptrace_stop", self.p.ptrace_stop_ns)

    # -- virtualisation -------------------------------------------------------

    def vmexit(self) -> None:
        self._charge("vmexit", self.p.vmexit_ns)

    def irq_inject(self) -> None:
        self._charge("irq_inject", self.p.irq_inject_ns)

    def eventfd_signal(self) -> None:
        self._charge("eventfd_signal", self.p.eventfd_signal_ns)

    def ioregionfd_message(self) -> None:
        self._charge("ioregionfd_msg", self.p.ioregionfd_msg_ns)

    # -- virtio notification bookkeeping --------------------------------------
    #
    # Pure counters (no clock advance): the time of a kick is charged by
    # the MMIO/VMEXIT path it rides on, and a suppressed notification by
    # definition costs nothing.  They exist so tests and ablations can
    # assert the *mechanism* — how many doorbells rang, how many were
    # elided, how deep the completion batches ran.

    def virtio_kick(self) -> None:
        """A doorbell actually rung (one MMIO store to QUEUE_NOTIFY)."""
        self.bump("kicks")

    def virtio_kick_suppressed(self, n: int = 1) -> None:
        """Doorbells elided under EVENT_IDX (deferred or suppressed)."""
        self.bump("kick_suppressed", n)

    def virtio_irq_coalesced(self, n: int = 1) -> None:
        """Per-completion interrupts folded into one batch interrupt."""
        self.bump("irq_coalesced", n)

    def virtio_irq_suppressed(self) -> None:
        """A used-ring publish whose interrupt EVENT_IDX elided outright."""
        self.bump("irq_suppressed")

    def virtio_batch(self, queue: str, depth: int) -> None:
        """Histogram of completion-batch depths, per device queue kind."""
        self.bump(f"virtio_{queue}_batch_{depth}")

    def batch_histogram(self, queue: str) -> Dict[int, int]:
        prefix = f"virtio_{queue}_batch_"
        return {
            int(name[len(prefix):]): value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    # -- memory copies --------------------------------------------------------

    def _copy_ns(self, nbytes: int, bytes_per_us: int, call_ns: int) -> int:
        return call_ns + (nbytes * 1_000) // max(1, bytes_per_us)

    def memcpy(self, nbytes: int) -> None:
        self._charge(
            "memcpy", self._copy_ns(nbytes, self.p.memcpy_bytes_per_us, self.p.memcpy_call_ns)
        )

    def procvm_copy(self, nbytes: int) -> None:
        self.procvm_vectored(nbytes, 1)

    def procvm_vectored(self, nbytes: int, nsegs: int) -> None:
        """One process_vm_readv/writev call carrying ``nsegs`` iovec segments.

        Batching only saves the syscall entry and task lookup: the
        kernel still pins and copies each segment, so every segment
        after the first adds ``procvm_seg_ns`` on top of the per-call
        and per-byte terms.  A single-segment call costs exactly what
        :meth:`procvm_copy` always charged.
        """
        nsegs = max(1, nsegs)
        self._charge(
            "procvm_copy",
            self._copy_ns(nbytes, self.p.procvm_bytes_per_us, self.p.procvm_call_ns)
            + (nsegs - 1) * self.p.procvm_seg_ns,
        )
        if nsegs > 1:
            self.bump("procvm_sg_segments", nsegs)

    def bytewise_copy(self, nbytes: int) -> None:
        """Unoptimised copy path, kept for the §5 ablation."""
        self._charge(
            "bytewise_copy",
            self._copy_ns(nbytes, self.p.bytewise_bytes_per_us, self.p.procvm_call_ns),
        )

    # -- storage ---------------------------------------------------------------

    def disk_io(self, nbytes: int) -> None:
        ns = self.p.disk_service_ns + (nbytes * 1_000) // self.p.disk_bytes_per_us
        self._charge("disk_io", ns)

    def host_fs_op(self) -> None:
        self._charge("host_fs_op", self.p.host_fs_op_ns)

    def guest_fs_op(self) -> None:
        self._charge("guest_fs_op", self.p.guest_fs_op_ns)

    def guest_block_submit(self) -> None:
        self._charge("guest_block_submit", self.p.guest_block_layer_ns)

    def pagecache_hit(self, npages: int) -> None:
        self._charge("pagecache_hit", self.p.pagecache_hit_ns_per_page * max(1, npages))

    def pagecache_insert(self, npages: int) -> None:
        self._charge(
            "pagecache_insert", self.p.pagecache_insert_ns_per_page * max(1, npages)
        )

    # -- 9p ----------------------------------------------------------------------

    def p9_data_op(self) -> None:
        self._charge("p9_rpc", self.p.p9_rpc_ns * self.p.p9_rpcs_per_data_op)

    def p9_meta_op(self) -> None:
        self._charge("p9_rpc", self.p.p9_rpc_ns * self.p.p9_rpcs_per_meta_op)

    # -- serverless control plane ---------------------------------------------------

    def faas_route(self) -> None:
        """Routing a request to an already-warm instance."""
        self._charge("faas_route", self.p.faas_route_ns)

    def faas_cold_start(self) -> None:
        """The cold-start penalty scale-down trades for density (§6.5)."""
        self._charge("faas_cold_start", self.p.faas_cold_start_ns)

    def faas_snapshot_restore(self) -> None:
        """Serve a cold invocation from the prebaked snapshot pool."""
        self._charge("faas_snapshot_restore", self.p.faas_snapshot_restore_ns)

    # -- snapshot / restore / migrate -----------------------------------------------

    def vm_snapshot_capture(self) -> None:
        self._charge("vm_snapshot_capture", self.p.vm_snapshot_capture_ns)

    def vm_snapshot_restore(self) -> None:
        self._charge("vm_snapshot_restore", self.p.vm_snapshot_restore_ns)

    def vm_migrate(self) -> None:
        self._charge("vm_migrate", self.p.vm_migrate_ns)

    # -- console / network ---------------------------------------------------------

    def tty_turnaround(self) -> None:
        self._charge("tty", self.p.tty_layer_ns)

    def shell_exec(self) -> None:
        self._charge("shell_exec", self.p.shell_exec_ns)

    def net_loopback_rtt(self) -> None:
        self._charge("net_rtt", self.p.net_loopback_rtt_ns)

    def guest_net_submit(self) -> None:
        """Guest net-stack path from sendmsg to the TX virtqueue."""
        self._charge("guest_net_submit", self.p.guest_net_layer_ns)

    def ssh_message(self) -> None:
        self._charge("ssh_msg", self.p.ssh_crypto_ns_per_msg)

    def vmsh_console_hop(self) -> None:
        self._charge("vmsh_console_hop", self.p.vmsh_console_hop_ns)
