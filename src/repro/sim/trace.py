"""Structured event tracing for the simulation.

A :class:`Tracer` collects typed events (side-load phases, MMIO exits,
virtqueue kicks, mounts, ...).  Tests use it to assert that mechanisms
fired in the expected order; the examples use it to narrate what VMSH
is doing, mirroring the kernel-log visibility the paper describes
("VMSH is intentionally designed so that its own execution is visible
to the guest").
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import RecordingOverflowError

#: detail value types that are copied at emit() so later in-place
#: mutation by the emitter cannot rewrite already-recorded history.
_MUTABLE_DETAIL_TYPES = (dict, list, set, bytearray)


@dataclass(frozen=True)
class Event:
    """A single trace event."""

    time_ns: int
    category: str
    name: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time_ns:>12} ns] {self.category}/{self.name} {extras}".rstrip()


class Tracer:
    """Collects :class:`Event` records against a virtual clock."""

    def __init__(self, clock: Any = None, max_events: int = 1_000_000):
        self._clock = clock
        self._max_events = max_events
        self.events: List[Event] = []
        self.enabled = True
        #: total events evicted to bound memory across all truncations
        self.dropped_events = 0
        #: live consumers fed every event as it is emitted (recorders,
        #: replay comparators); errors are not swallowed on purpose.
        self._sinks: List[Callable[[Event], None]] = []
        # recording-safe mode: >0 while a RunRecorder (or replay
        # comparator) needs the stream complete — eviction raises.
        self._pins = 0

    # -- recording support -------------------------------------------------

    def add_sink(self, sink: Callable[[Event], None]) -> None:
        """Feed every future event to ``sink`` as it is emitted."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Event], None]) -> None:
        self._sinks.remove(sink)

    def pin(self) -> None:
        """Enter recording-safe mode (nestable): eviction raises.

        While pinned, hitting ``max_events`` raises
        :class:`RecordingOverflowError` instead of silently dropping
        the oldest half — a replay cross-checks *every* event, so a
        truncated stream would be unverifiable.
        """
        self._pins += 1

    def unpin(self) -> None:
        self._pins -= 1

    @property
    def pinned(self) -> bool:
        return self._pins > 0

    def emit(self, category: str, name: str, /, **detail: Any) -> None:
        if not self.enabled:
            return
        now = self._clock.now if self._clock is not None else 0
        if len(self.events) >= self._max_events:
            if self._pins:
                raise RecordingOverflowError(
                    f"tracer hit max_events={self._max_events} while a "
                    "recording is active; raise max_events or record a "
                    "shorter run"
                )
            # Drop oldest half to bound memory on very long runs, and
            # leave a marker so truncated traces are detectable.
            dropped = self._max_events // 2
            del self.events[:dropped]
            self.dropped_events += dropped
            marker = Event(
                now,
                "tracer",
                "evicted",
                {"dropped": dropped, "total_dropped": self.dropped_events},
            )
            self.events.append(marker)
            for sink in tuple(self._sinks):
                sink(marker)
        # The defensive deep copy exists for *recorded* streams: a
        # replay comparator or recorder sink must never see history
        # rewritten by an emitter mutating its detail dict in place.
        # With no sink and no pin, nothing re-reads the stored detail
        # against a later mutation, so the hot path skips the copy —
        # emit() is then one Event alloc and a list append.
        if self._sinks or self._pins:
            for key, value in detail.items():
                if isinstance(value, _MUTABLE_DETAIL_TYPES):
                    detail[key] = copy.deepcopy(value)
            event = Event(now, category, name, detail)
            self.events.append(event)
            for sink in tuple(self._sinks):
                sink(event)
        else:
            self.events.append(Event(now, category, name, detail))

    def mark(self) -> int:
        """Return a cursor over the *logical* event stream.

        The cursor is the total number of events ever emitted (evicted
        included), so it stays valid when the oldest-half eviction in
        :meth:`emit` shifts list positions — unlike ``len(t.events)``,
        which silently re-points at newer events after a truncation.
        """
        return self.dropped_events + len(self.events)

    def since(self, mark: int) -> List[Event]:
        """Events emitted after ``mark`` (from :meth:`mark`).

        Events that were both emitted and evicted after the mark are
        gone; the surviving suffix is returned, which is exactly the
        window positional slicing gets wrong.
        """
        return self.events[max(0, mark - self.dropped_events):]

    def find(self, category: Optional[str] = None, name: Optional[str] = None) -> List[Event]:
        """All events matching the given category and/or name."""
        return [
            e
            for e in self.events
            if (category is None or e.category == category)
            and (name is None or e.name == name)
        ]

    def names(self, category: str) -> List[str]:
        """Ordered event names within one category."""
        return [e.name for e in self.events if e.category == category]

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class NullTracer(Tracer):
    """Tracer that drops everything (for hot benchmark loops)."""

    def __init__(self) -> None:
        super().__init__(clock=None)
        self.enabled = False

    def emit(self, category: str, name: str, /, **detail: Any) -> None:  # noqa: D102
        return
