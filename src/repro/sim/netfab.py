"""NetFabric: a deterministic, scheduler-driven network between VMs.

The traffic plane (usecases/traffic.py) needs frames to take *time* —
otherwise tail latency under chaos degenerates into function-call
latency.  The fabric models each attached endpoint as a port on a
switch with:

* per-link one-way latency (a scheduler delay, not a clock charge, so
  many frames are in flight concurrently),
* serialization at both the sender's egress and the receiver's ingress
  (``bytes / link rate``); a flooding neighbor therefore queues behind
  itself *and* delays everyone else into the same port — which is what
  makes the noisy-neighbor chaos leg real,
* seed-derived random drops, from an RNG stream derived per fabric
  label so enabling drops never perturbs any other subsystem's stream.

Everything is deterministic per ``(master_seed, topology, workload)``:
delivery uses :meth:`Scheduler.at`, whose tie-breaking is itself
seed-derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import VmshError
from repro.sim.costs import CostModel
from repro.sim.rng import MASTER_SEED, stream
from repro.sim.sched import Scheduler
from repro.virtio.net import BROADCAST_MAC, MIN_FRAME_SIZE, frame_dst


@dataclass(frozen=True)
class LinkParams:
    """One direction of one link."""

    latency_ns: int
    bytes_per_us: int
    drop_rate: float = 0.0

    def serialization_ns(self, nbytes: int) -> int:
        return (nbytes * 1_000) // max(1, self.bytes_per_us)


class NetPort:
    """One endpoint's attachment to the fabric."""

    def __init__(self, fabric: "NetFabric", name: str, mac: bytes):
        self.fabric = fabric
        self.name = name
        self.mac = mac
        self._rx_sink: Optional[Callable[[bytes], None]] = None
        self.tx_frames = 0
        self.rx_frames = 0

    def connect(self, rx_sink: Callable[[bytes], None]) -> None:
        """Install the endpoint's receive path (``rx_sink(frame)``)."""
        self._rx_sink = rx_sink

    def transmit(self, frame: bytes, pair: int = 0) -> None:
        """Endpoint -> fabric (signature matches the device TX sink)."""
        self.tx_frames += 1
        self.fabric.transmit(self, frame)

    def _deliver(self, frame: bytes) -> None:
        self.rx_frames += 1
        if self._rx_sink is not None:
            self._rx_sink(frame)


class NetFabric:
    """A star-topology switch with per-direction link parameters."""

    def __init__(
        self,
        scheduler: Scheduler,
        costs: Optional[CostModel] = None,
        master_seed: int = MASTER_SEED,
        label: str = "netfab",
        latency_ns: Optional[int] = None,
        bytes_per_us: Optional[int] = None,
        drop_rate: float = 0.0,
    ):
        self.scheduler = scheduler
        self.costs = costs
        params = costs.p if costs is not None else None
        self.default = LinkParams(
            latency_ns=(
                latency_ns if latency_ns is not None
                else (params.net_link_latency_ns if params else 50_000)
            ),
            bytes_per_us=(
                bytes_per_us if bytes_per_us is not None
                else (params.net_link_bytes_per_us if params else 1_250)
            ),
            drop_rate=drop_rate,
        )
        self._ports: Dict[bytes, NetPort] = {}
        self._links: Dict[Tuple[bytes, bytes], LinkParams] = {}
        # (egress, ingress) serialization horizons per port, in ns.
        self._egress_busy: Dict[bytes, int] = {}
        self._ingress_busy: Dict[bytes, int] = {}
        self._rng = stream(f"{label}:drops", master_seed)
        self._mac_seq = 0
        obs = costs.obs if costs is not None else None
        if obs is not None:
            scope = obs.metrics.scope("netfab", fabric=label)
            self._m_frames = scope.counter("frames")
            self._m_bytes = scope.counter("bytes")
            self._m_dropped = scope.counter("dropped")
            self._m_unrouted = scope.counter("unrouted")
        else:
            self._m_frames = None
            self._m_bytes = None
            self._m_dropped = None
            self._m_unrouted = None
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_unrouted = 0

    # -- topology -------------------------------------------------------------

    def alloc_mac(self) -> bytes:
        """A locally-administered MAC, unique per fabric."""
        self._mac_seq += 1
        return b"\x52\x54\x00" + self._mac_seq.to_bytes(3, "big")

    def attach(self, name: str, mac: Optional[bytes] = None) -> NetPort:
        if mac is None:
            mac = self.alloc_mac()
        if mac in self._ports:
            raise VmshError(f"netfab: MAC {mac.hex(':')} already attached")
        port = NetPort(self, name, mac)
        self._ports[mac] = port
        self._egress_busy[mac] = 0
        self._ingress_busy[mac] = 0
        return port

    def detach(self, port: NetPort) -> None:
        self._ports.pop(port.mac, None)
        self._egress_busy.pop(port.mac, None)
        self._ingress_busy.pop(port.mac, None)

    def link(
        self,
        a: NetPort,
        b: NetPort,
        latency_ns: Optional[int] = None,
        bytes_per_us: Optional[int] = None,
        drop_rate: Optional[float] = None,
        symmetric: bool = True,
    ) -> None:
        """Override link parameters between two ports (else defaults)."""
        params = LinkParams(
            latency_ns=(
                latency_ns if latency_ns is not None else self.default.latency_ns
            ),
            bytes_per_us=(
                bytes_per_us if bytes_per_us is not None
                else self.default.bytes_per_us
            ),
            drop_rate=(
                drop_rate if drop_rate is not None else self.default.drop_rate
            ),
        )
        self._links[(a.mac, b.mac)] = params
        if symmetric:
            self._links[(b.mac, a.mac)] = params

    def port_for(self, mac: bytes) -> Optional[NetPort]:
        return self._ports.get(mac)

    def _params(self, src: bytes, dst: bytes) -> LinkParams:
        return self._links.get((src, dst), self.default)

    # -- data path ------------------------------------------------------------

    def transmit(self, src_port: NetPort, frame: bytes) -> None:
        if len(frame) < MIN_FRAME_SIZE:
            raise VmshError(f"netfab: runt frame ({len(frame)} bytes)")
        dst = frame_dst(frame)
        if dst == BROADCAST_MAC:
            targets = [p for m, p in self._ports.items() if m != src_port.mac]
        else:
            target = self._ports.get(dst)
            if target is None:
                self.frames_unrouted += 1
                if self._m_unrouted is not None:
                    self._m_unrouted.inc()
                return
            targets = [target]
        for target in targets:
            self._send_one(src_port, target, frame)

    def _send_one(self, src: NetPort, dst: NetPort, frame: bytes) -> None:
        params = self._params(src.mac, dst.mac)
        if params.drop_rate and self._rng.random() < params.drop_rate:
            self.frames_dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            return
        now = self.scheduler.now
        wire_ns = params.serialization_ns(len(frame))
        # Egress: the sender's NIC puts one frame on the wire at a time.
        depart = max(now, self._egress_busy[src.mac]) + wire_ns
        self._egress_busy[src.mac] = depart
        arrive = depart + params.latency_ns
        # Ingress: the receiver takes frames off the wire serially too —
        # this is where a flooding neighbor delays everyone else.
        deliver_at = max(arrive, self._ingress_busy[dst.mac]) + wire_ns
        self._ingress_busy[dst.mac] = deliver_at
        self.frames_delivered += 1
        if self._m_frames is not None:
            self._m_frames.inc()
            self._m_bytes.inc(len(frame))
        self.scheduler.at(
            deliver_at,
            lambda: dst._deliver(frame),
            label=f"netfab:{src.name}->{dst.name}",
        )
