"""Deterministic simulation substrate: clock, scheduler, costs, RNG, tracing."""

from repro.sim.clock import Clock, Stopwatch, TimeSeries
from repro.sim.costs import CostModel, CostParams
from repro.sim.rng import derive_seed, stream
from repro.sim.sched import (
    Completion,
    PeriodicTimer,
    Scheduler,
    SchedulerError,
    Task,
    Timer,
    Waitable,
)
from repro.sim.trace import Event, NullTracer, Tracer

__all__ = [
    "Clock",
    "Stopwatch",
    "TimeSeries",
    "CostModel",
    "CostParams",
    "derive_seed",
    "stream",
    "Completion",
    "PeriodicTimer",
    "Scheduler",
    "SchedulerError",
    "Task",
    "Timer",
    "Waitable",
    "Event",
    "Tracer",
    "NullTracer",
]
