"""Deterministic random number generation helpers.

Each subsystem derives its own :class:`random.Random` stream from a
master seed plus a label, so adding randomness to one component never
perturbs another component's stream (a classic simulation-repeatability
pitfall).
"""

from __future__ import annotations

import hashlib
import random


MASTER_SEED = 0x564D5348  # "VMSH" in ASCII


def derive_seed(label: str, master: int = MASTER_SEED) -> int:
    """Derive a stable 64-bit seed for ``label`` from ``master``."""
    digest = hashlib.sha256(f"{master:#x}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def stream(label: str, master: int = MASTER_SEED) -> random.Random:
    """Independent deterministic RNG stream for a named subsystem."""
    return random.Random(derive_seed(label, master))
