"""Deterministic fault injection for the simulated host (chaos substrate).

The attach pipeline's safety claim — a failed or aborted attach leaves
the guest running and uncorrupted (§4, §6.2) — is only testable if
failures can be *provoked on demand, reproducibly*.  This module
provides that: a :class:`FaultPlan` names injection sites threaded
through the simulated host, and a :class:`FaultInjector` (one per
:class:`~repro.host.kernel.HostKernel`) consults the armed plan at
every site.  Schedules can be scripted exactly or derived from the
master seed via :func:`repro.sim.rng.derive_seed`, so the same seed
always produces the same fault schedule and the same trace.

Fault semantics are *fail-before*: a site is checked immediately before
the operation it guards executes, so an injected fault means the
operation never happened — there is no partially-executed ptrace stop
or half-registered irqfd to reason about.  Each fired fault is emitted
to the tracer as a ``fault/injected`` event.

Injection sites (checked wherever the named mechanism runs):

========================  =====================================================
``attach.<step>``         each step boundary of ``Vmsh._attach_once``
                          (see ``repro.core.vmsh.ATTACH_STEPS``)
``ptrace.attach``         PTRACE_ATTACH (``repro.host.ptrace.attach``)
``ptrace.interrupt``      PTRACE_INTERRUPT
``ptrace.resume``         PTRACE_CONT
``ptrace.inject_syscall`` syscall injection into the tracee
``syscall.<name>``        any host syscall, native or injected
``ioctl.<request>``       ioctl dispatch by request name (KVM_IRQFD, ...)
``kvm.<request>``         the KVM side of a VM/system ioctl
``seccomp.injected``      an *injected* syscall only — the Firecracker
                          seccomp-kill quirk (§6.2)
``physmem.read/write``    guest physical memory accessors
``quirk.<name>``          non-raising behaviour flags, e.g.
                          ``quirk.ioregionfd_missing`` makes
                          KVM_CHECK_EXTENSION deny ioregionfd (the
                          Cloud Hypervisor / unpatched-kernel quirk)
========================  =====================================================
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence

from repro.errors import (
    PermanentFaultError,
    SeccompViolationError,
    TransientFaultError,
    UnknownFaultSiteError,
)
from repro.sim import rng as simrng

TRANSIENT = "transient"
PERMANENT = "permanent"

#: sites a seed-derived schedule may draw from by default — one per
#: mechanism class the attach pipeline exercises.
DEFAULT_CHAOS_SITES = (
    "ptrace.interrupt",
    "ptrace.inject_syscall",
    "syscall.eventfd2",
    "syscall.mmap",
    "ioctl.KVM_IRQFD",
    "ioctl.KVM_SET_USER_MEMORY_REGION",
    "ioctl.KVM_SET_IOREGION",
    "ioctl.KVM_GET_SREGS",
    "physmem.read",
)

# ---------------------------------------------------------------------------
# Known-site registry
# ---------------------------------------------------------------------------
#
# The sites threaded through the simulated host form a closed set per
# family; a FaultPlan naming a site outside it would never fire, so
# arming one is a bug in the plan.  Families whose member set lives in
# code we can enumerate are checked exactly; ioctl/kvm/syscall names
# are open-ended (the host's tables grow), so those are checked for
# *shape* — which still catches the classic typo of putting a step
# name or a lowercase request where an uppercase one belongs.

_PTRACE_SITES = frozenset(
    {"ptrace.attach", "ptrace.interrupt", "ptrace.resume", "ptrace.inject_syscall"}
)
_SECCOMP_SITES = frozenset({"seccomp.injected"})
_PHYSMEM_SITES = frozenset({"physmem.read", "physmem.write"})
_QUIRK_SITES = frozenset({"quirk.ioregionfd_missing"})
#: virtio data-plane sites: the net device consults the host injector
#: on every RX flush / TX drain, so chaos plans can wedge a queue pair
#: without touching the descriptor rings themselves.
_VIRTIO_SITES = frozenset({"virtio.net_rx_ring", "virtio.net_tx_ring"})
_UPPER_REQUEST = re.compile(r"^[A-Z][A-Z0-9_]*$")
_SYSCALL_NAME = re.compile(r"^[a-z_][a-z0-9_]*$")

#: sites registered at runtime (tests, bespoke harnesses) on top of
#: the built-in families above.
_registered_sites: set = set()


def register_fault_site(*sites: str) -> None:
    """Declare extra injection sites as known (test harness hooks)."""
    _registered_sites.update(sites)


def _attach_steps() -> Sequence[str]:
    from repro.core.vmsh import ATTACH_STEPS  # deferred: core imports sim

    return ATTACH_STEPS


def builtin_fault_sites() -> FrozenSet[str]:
    """The built-in site families only — the fuzzer's generation pool.

    Deliberately excludes runtime-registered harness sites: those are
    process-local (whichever test modules happened to import first),
    and drawing from them would make the fuzzer's pinned-seed case
    sequence depend on collection order instead of the master seed.

    Open-ended families (``ioctl.*``, ``kvm.*``, ``syscall.*``) are
    represented by the members :data:`DEFAULT_CHAOS_SITES` names.
    """
    return frozenset(
        {f"attach.{step}" for step in _attach_steps()}
        | _PTRACE_SITES
        | _SECCOMP_SITES
        | _PHYSMEM_SITES
        | _QUIRK_SITES
        | _VIRTIO_SITES
        | set(DEFAULT_CHAOS_SITES)
    )


def known_fault_sites() -> FrozenSet[str]:
    """Every exactly-enumerable site, runtime registrations included."""
    return builtin_fault_sites() | frozenset(_registered_sites)


def validate_fault_site(site: str) -> None:
    """Raise :class:`UnknownFaultSiteError` for a site nothing checks.

    Sites outside the reserved family prefixes are left alone — tests
    arm bespoke sites (``op``, ``cleanup.op``) against hand-rolled
    ``check()`` calls, and that stays legal.
    """
    if site in _registered_sites:
        return
    family, _, member = site.partition(".")
    checks = {
        "attach": lambda: site in {f"attach.{s}" for s in _attach_steps()},
        "ptrace": lambda: site in _PTRACE_SITES,
        "seccomp": lambda: site in _SECCOMP_SITES,
        "physmem": lambda: site in _PHYSMEM_SITES,
        "quirk": lambda: site in _QUIRK_SITES,
        "virtio": lambda: site in _VIRTIO_SITES,
        "ioctl": lambda: bool(_UPPER_REQUEST.match(member)),
        "kvm": lambda: bool(_UPPER_REQUEST.match(member)),
        "syscall": lambda: bool(_SYSCALL_NAME.match(member)),
    }
    check = checks.get(family)
    if check is None or check():
        return
    if family == "attach":
        hint = "known steps: " + ", ".join(_attach_steps())
    elif family in ("ioctl", "kvm"):
        hint = "request names are UPPER_CASE, e.g. ioctl.KVM_IRQFD"
    elif family == "syscall":
        hint = "syscall names are lower_case, e.g. syscall.eventfd2"
    else:
        hint = "known members: " + ", ".join(
            sorted(s for s in known_fault_sites() if s.startswith(family + "."))
        )
    raise UnknownFaultSiteError(site, hint)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire on the Nth hit of ``site``.

    A *transient* fault fires for hits ``occurrence .. occurrence +
    count - 1`` and then heals — an occurrence-indexed match, so a
    retried pipeline that re-traverses the site naturally gets past it.
    A *permanent* fault fires on every hit from ``occurrence`` on.

    ``flavor`` selects the raised error: ``"generic"`` raises
    :class:`TransientFaultError`/:class:`PermanentFaultError`;
    ``"seccomp_kill"`` raises :class:`SeccompViolationError` the way a
    Firecracker filter would reject the injected syscall.
    """

    site: str
    occurrence: int = 1
    kind: str = TRANSIENT
    count: int = 1
    flavor: str = "generic"
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (TRANSIENT, PERMANENT):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.occurrence < 1 or self.count < 1:
            raise ValueError("occurrence and count are 1-based and positive")

    def matches(self, hit: int) -> bool:
        if self.kind == PERMANENT:
            return hit >= self.occurrence
        return self.occurrence <= hit < self.occurrence + self.count


class FaultPlan:
    """An ordered set of :class:`FaultSpec` with a provenance label."""

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        label: str = "scripted",
        master_seed: int = simrng.MASTER_SEED,
    ):
        self.specs: List[FaultSpec] = list(specs)
        self.label = label
        self.master_seed = master_seed

    @classmethod
    def derive(
        cls,
        label: str,
        master_seed: int = simrng.MASTER_SEED,
        sites: Sequence[str] = DEFAULT_CHAOS_SITES,
        faults: int = 3,
        transient_ratio: float = 0.5,
        max_occurrence: int = 4,
    ) -> "FaultPlan":
        """Seed-derived schedule: same ``(label, master_seed)`` — same plan.

        Draws from a dedicated RNG stream (``faults:<label>``) so other
        seeded subsystems are not perturbed.
        """
        stream = simrng.stream(f"faults:{label}", master_seed)
        specs = []
        for _ in range(faults):
            specs.append(
                FaultSpec(
                    site=stream.choice(list(sites)),
                    occurrence=stream.randint(1, max_occurrence),
                    kind=TRANSIENT if stream.random() < transient_ratio else PERMANENT,
                )
            )
        return cls(specs, label=label, master_seed=master_seed)

    def mentions(self, prefix: str) -> bool:
        return any(s.site.startswith(prefix) for s in self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.label!r}, {len(self.specs)} specs)"


@dataclass(frozen=True)
class FiredFault:
    """Log record of one injected fault (for chaos-suite assertions)."""

    site: str
    kind: str
    occurrence: int


class FaultInjector:
    """Per-host runtime consulted at every fault site.

    Disarmed (the default) it is inert: :meth:`check` is a cheap
    early-return, so the injector can stay permanently wired into the
    host's hot paths.  :meth:`suspended` masks injection — rollback
    code runs under it so compensating actions can never themselves be
    failed by the plan that triggered them.
    """

    def __init__(self, tracer: Any = None, obs: Any = None):
        self.tracer = tracer
        #: observability hub (``repro.obs.Observability``) — fired
        #: faults land as instant spans on the "faults" track and bump
        #: a per-site counter, so injections line up with attach-step
        #: spans in the exported Perfetto trace.
        self.obs = obs
        self._plan: Optional[FaultPlan] = None
        self._hits: Dict[str, int] = {}
        self._suspend_depth = 0
        self.fired: List[FiredFault] = []

    # -- lifecycle ---------------------------------------------------------

    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan``; hit counters and the fired log restart.

        Every spec's site is validated against the known-site registry
        first — a typo'd site fails here, not by silently never firing.
        """
        for spec in plan.specs:
            validate_fault_site(spec.site)
        self._plan = plan
        self._hits = {}
        self.fired = []
        if plan.mentions("physmem."):
            from repro.mem.physmem import PhysicalMemory

            PhysicalMemory.fault_check = self.check
        if self.tracer is not None:
            self.tracer.emit(
                "fault", "armed", plan=plan.label, specs=len(plan.specs)
            )

    def disarm(self) -> None:
        from repro.mem.physmem import PhysicalMemory

        if PhysicalMemory.fault_check == self.check:
            PhysicalMemory.fault_check = None
        self._plan = None
        self._hits = {}

    @property
    def armed(self) -> bool:
        return self._plan is not None

    @property
    def active(self) -> bool:
        """True when :meth:`check` could do anything at all right now.

        Exactly the early-out condition inside ``check``, exposed so
        hot call sites (every syscall, ioctl and KVM request) can skip
        building the ``f"site.{name}"`` string and the call itself
        when no plan is armed — ``check`` neither counts hits nor
        registers sites in that state, so gating on this is
        behavior-identical.
        """
        return self._plan is not None and not self._suspend_depth

    @contextmanager
    def plan(self, plan: FaultPlan) -> Iterator["FaultInjector"]:
        """Scoped arm/disarm for tests."""
        self.arm(plan)
        try:
            yield self
        finally:
            self.disarm()

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Mask injection (nestable) — used while unwinding a transaction."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    # -- the sites ---------------------------------------------------------

    def check(self, site: str, **detail: Any) -> None:
        """Count a hit of ``site``; raise if the armed plan says so."""
        if self._plan is None or self._suspend_depth:
            return
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        for spec in self._plan.specs:
            if spec.site == site and spec.matches(hit):
                self._fire(spec, hit, detail)

    def flag(self, site: str) -> bool:
        """Non-raising quirk flag: is ``site`` armed right now?

        Used for faults that alter behaviour instead of failing it,
        e.g. ``quirk.ioregionfd_missing`` downgrading the host kernel.
        """
        if self._plan is None or self._suspend_depth:
            return False
        if not any(s.site == site for s in self._plan.specs):
            return False
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        self._record(site, "quirk", hit)
        return True

    def hits(self, site: str) -> int:
        return self._hits.get(site, 0)

    # -- internal ----------------------------------------------------------

    def _record(self, site: str, kind: str, occurrence: int) -> None:
        self.fired.append(FiredFault(site=site, kind=kind, occurrence=occurrence))
        if self.tracer is not None:
            self.tracer.emit(
                "fault", "injected", site=site, kind=kind, occurrence=occurrence
            )
        if self.obs is not None:
            self.obs.instant(
                "fault.injected", track="faults",
                site=site, kind=kind, occurrence=occurrence,
            )
            self.obs.metrics.scope("faults").counter("injected", site=site).inc()

    def _fire(self, spec: FaultSpec, hit: int, detail: Dict[str, Any]) -> None:
        self._record(spec.site, spec.kind, hit)
        if spec.flavor == "seccomp_kill":
            raise SeccompViolationError(
                str(detail.get("syscall", "?")), str(detail.get("thread", "?"))
            )
        error = TransientFaultError if spec.kind == TRANSIENT else PermanentFaultError
        raise error(spec.site, spec.kind, hit, spec.message)


class NullFaultInjector(FaultInjector):
    """Injector that can never fire (for contexts without a host)."""

    def arm(self, plan: FaultPlan) -> None:  # noqa: D102
        raise RuntimeError("NullFaultInjector cannot arm a plan")

    def check(self, site: str, **detail: Any) -> None:  # noqa: D102
        return

    def flag(self, site: str) -> bool:  # noqa: D102
        return False
