"""Deterministic fault injection for the simulated host (chaos substrate).

The attach pipeline's safety claim — a failed or aborted attach leaves
the guest running and uncorrupted (§4, §6.2) — is only testable if
failures can be *provoked on demand, reproducibly*.  This module
provides that: a :class:`FaultPlan` names injection sites threaded
through the simulated host, and a :class:`FaultInjector` (one per
:class:`~repro.host.kernel.HostKernel`) consults the armed plan at
every site.  Schedules can be scripted exactly or derived from the
master seed via :func:`repro.sim.rng.derive_seed`, so the same seed
always produces the same fault schedule and the same trace.

Fault semantics are *fail-before*: a site is checked immediately before
the operation it guards executes, so an injected fault means the
operation never happened — there is no partially-executed ptrace stop
or half-registered irqfd to reason about.  Each fired fault is emitted
to the tracer as a ``fault/injected`` event.

Injection sites (checked wherever the named mechanism runs):

========================  =====================================================
``attach.<step>``         each step boundary of ``Vmsh._attach_once``
                          (see ``repro.core.vmsh.ATTACH_STEPS``)
``ptrace.attach``         PTRACE_ATTACH (``repro.host.ptrace.attach``)
``ptrace.interrupt``      PTRACE_INTERRUPT
``ptrace.resume``         PTRACE_CONT
``ptrace.inject_syscall`` syscall injection into the tracee
``syscall.<name>``        any host syscall, native or injected
``ioctl.<request>``       ioctl dispatch by request name (KVM_IRQFD, ...)
``kvm.<request>``         the KVM side of a VM/system ioctl
``seccomp.injected``      an *injected* syscall only — the Firecracker
                          seccomp-kill quirk (§6.2)
``physmem.read/write``    guest physical memory accessors
``quirk.<name>``          non-raising behaviour flags, e.g.
                          ``quirk.ioregionfd_missing`` makes
                          KVM_CHECK_EXTENSION deny ioregionfd (the
                          Cloud Hypervisor / unpatched-kernel quirk)
========================  =====================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import (
    PermanentFaultError,
    SeccompViolationError,
    TransientFaultError,
)
from repro.sim import rng as simrng

TRANSIENT = "transient"
PERMANENT = "permanent"

#: sites a seed-derived schedule may draw from by default — one per
#: mechanism class the attach pipeline exercises.
DEFAULT_CHAOS_SITES = (
    "ptrace.interrupt",
    "ptrace.inject_syscall",
    "syscall.eventfd2",
    "syscall.mmap",
    "ioctl.KVM_IRQFD",
    "ioctl.KVM_SET_USER_MEMORY_REGION",
    "ioctl.KVM_SET_IOREGION",
    "ioctl.KVM_GET_SREGS",
    "physmem.read",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire on the Nth hit of ``site``.

    A *transient* fault fires for hits ``occurrence .. occurrence +
    count - 1`` and then heals — an occurrence-indexed match, so a
    retried pipeline that re-traverses the site naturally gets past it.
    A *permanent* fault fires on every hit from ``occurrence`` on.

    ``flavor`` selects the raised error: ``"generic"`` raises
    :class:`TransientFaultError`/:class:`PermanentFaultError`;
    ``"seccomp_kill"`` raises :class:`SeccompViolationError` the way a
    Firecracker filter would reject the injected syscall.
    """

    site: str
    occurrence: int = 1
    kind: str = TRANSIENT
    count: int = 1
    flavor: str = "generic"
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (TRANSIENT, PERMANENT):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.occurrence < 1 or self.count < 1:
            raise ValueError("occurrence and count are 1-based and positive")

    def matches(self, hit: int) -> bool:
        if self.kind == PERMANENT:
            return hit >= self.occurrence
        return self.occurrence <= hit < self.occurrence + self.count


class FaultPlan:
    """An ordered set of :class:`FaultSpec` with a provenance label."""

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        label: str = "scripted",
        master_seed: int = simrng.MASTER_SEED,
    ):
        self.specs: List[FaultSpec] = list(specs)
        self.label = label
        self.master_seed = master_seed

    @classmethod
    def derive(
        cls,
        label: str,
        master_seed: int = simrng.MASTER_SEED,
        sites: Sequence[str] = DEFAULT_CHAOS_SITES,
        faults: int = 3,
        transient_ratio: float = 0.5,
        max_occurrence: int = 4,
    ) -> "FaultPlan":
        """Seed-derived schedule: same ``(label, master_seed)`` — same plan.

        Draws from a dedicated RNG stream (``faults:<label>``) so other
        seeded subsystems are not perturbed.
        """
        stream = simrng.stream(f"faults:{label}", master_seed)
        specs = []
        for _ in range(faults):
            specs.append(
                FaultSpec(
                    site=stream.choice(list(sites)),
                    occurrence=stream.randint(1, max_occurrence),
                    kind=TRANSIENT if stream.random() < transient_ratio else PERMANENT,
                )
            )
        return cls(specs, label=label, master_seed=master_seed)

    def mentions(self, prefix: str) -> bool:
        return any(s.site.startswith(prefix) for s in self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.label!r}, {len(self.specs)} specs)"


@dataclass(frozen=True)
class FiredFault:
    """Log record of one injected fault (for chaos-suite assertions)."""

    site: str
    kind: str
    occurrence: int


class FaultInjector:
    """Per-host runtime consulted at every fault site.

    Disarmed (the default) it is inert: :meth:`check` is a cheap
    early-return, so the injector can stay permanently wired into the
    host's hot paths.  :meth:`suspended` masks injection — rollback
    code runs under it so compensating actions can never themselves be
    failed by the plan that triggered them.
    """

    def __init__(self, tracer: Any = None, obs: Any = None):
        self.tracer = tracer
        #: observability hub (``repro.obs.Observability``) — fired
        #: faults land as instant spans on the "faults" track and bump
        #: a per-site counter, so injections line up with attach-step
        #: spans in the exported Perfetto trace.
        self.obs = obs
        self._plan: Optional[FaultPlan] = None
        self._hits: Dict[str, int] = {}
        self._suspend_depth = 0
        self.fired: List[FiredFault] = []

    # -- lifecycle ---------------------------------------------------------

    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan``; hit counters and the fired log restart."""
        self._plan = plan
        self._hits = {}
        self.fired = []
        if plan.mentions("physmem."):
            from repro.mem.physmem import PhysicalMemory

            PhysicalMemory.fault_check = self.check
        if self.tracer is not None:
            self.tracer.emit(
                "fault", "armed", plan=plan.label, specs=len(plan.specs)
            )

    def disarm(self) -> None:
        from repro.mem.physmem import PhysicalMemory

        if PhysicalMemory.fault_check == self.check:
            PhysicalMemory.fault_check = None
        self._plan = None
        self._hits = {}

    @property
    def armed(self) -> bool:
        return self._plan is not None

    @contextmanager
    def plan(self, plan: FaultPlan) -> Iterator["FaultInjector"]:
        """Scoped arm/disarm for tests."""
        self.arm(plan)
        try:
            yield self
        finally:
            self.disarm()

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Mask injection (nestable) — used while unwinding a transaction."""
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    # -- the sites ---------------------------------------------------------

    def check(self, site: str, **detail: Any) -> None:
        """Count a hit of ``site``; raise if the armed plan says so."""
        if self._plan is None or self._suspend_depth:
            return
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        for spec in self._plan.specs:
            if spec.site == site and spec.matches(hit):
                self._fire(spec, hit, detail)

    def flag(self, site: str) -> bool:
        """Non-raising quirk flag: is ``site`` armed right now?

        Used for faults that alter behaviour instead of failing it,
        e.g. ``quirk.ioregionfd_missing`` downgrading the host kernel.
        """
        if self._plan is None or self._suspend_depth:
            return False
        if not any(s.site == site for s in self._plan.specs):
            return False
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        self._record(site, "quirk", hit)
        return True

    def hits(self, site: str) -> int:
        return self._hits.get(site, 0)

    # -- internal ----------------------------------------------------------

    def _record(self, site: str, kind: str, occurrence: int) -> None:
        self.fired.append(FiredFault(site=site, kind=kind, occurrence=occurrence))
        if self.tracer is not None:
            self.tracer.emit(
                "fault", "injected", site=site, kind=kind, occurrence=occurrence
            )
        if self.obs is not None:
            self.obs.instant(
                "fault.injected", track="faults",
                site=site, kind=kind, occurrence=occurrence,
            )
            self.obs.metrics.scope("faults").counter("injected", site=site).inc()

    def _fire(self, spec: FaultSpec, hit: int, detail: Dict[str, Any]) -> None:
        self._record(spec.site, spec.kind, hit)
        if spec.flavor == "seccomp_kill":
            raise SeccompViolationError(
                str(detail.get("syscall", "?")), str(detail.get("thread", "?"))
            )
        error = TransientFaultError if spec.kind == TRANSIENT else PermanentFaultError
        raise error(spec.site, spec.kind, hit, spec.message)


class NullFaultInjector(FaultInjector):
    """Injector that can never fire (for contexts without a host)."""

    def arm(self, plan: FaultPlan) -> None:  # noqa: D102
        raise RuntimeError("NullFaultInjector cannot arm a plan")

    def check(self, site: str, **detail: Any) -> None:  # noqa: D102
        return

    def flag(self, site: str) -> bool:  # noqa: D102
        return False
