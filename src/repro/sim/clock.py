"""Deterministic virtual clock.

All timing in the simulation is charged against a :class:`Clock`
instance rather than wall time, so a benchmark run is bit-for-bit
reproducible.  Components that consume time (devices, the host kernel,
the cost model) hold a reference to the same clock and ``advance`` it.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.units import fmt_time


class Clock:
    """Monotonic virtual clock measured in integer nanoseconds."""

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = start_ns
        self._observers: List[Callable[[int, int], None]] = []

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move the clock forward by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative time {delta_ns}")
        old = self._now
        self._now += delta_ns
        for observer in self._observers:
            observer(old, self._now)
        return self._now

    def subscribe(self, observer: Callable[[int, int], None]) -> None:
        """Register ``observer(old_ns, new_ns)`` called on every advance."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[int, int], None]) -> None:
        """Remove a subscribed observer (no-op if absent).

        Observers that outlive their owner — a monitor's time series
        after ``detach()``, a tracer from a finished session — would
        otherwise keep firing on every advance for the clock's whole
        lifetime.
        """
        if observer in self._observers:
            self._observers.remove(observer)

    def elapsed_since(self, t0_ns: int) -> int:
        """Nanoseconds elapsed since ``t0_ns``."""
        return self._now - t0_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(t={fmt_time(self._now)})"


class Stopwatch:
    """Measures a span of virtual time on a :class:`Clock`.

    Usage::

        with Stopwatch(clock) as sw:
            ...do simulated work...
        print(sw.elapsed)
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._start = 0
        self._stop: int = -1

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now
        self._stop = -1
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop = self._clock.now

    @property
    def elapsed(self) -> int:
        """Elapsed nanoseconds (live value while the span is open)."""
        end = self._clock.now if self._stop < 0 else self._stop
        return end - self._start


class TimeSeries:
    """Append-only series of (time, value) samples on a virtual clock.

    Besides explicit :meth:`record` calls, a series can *follow* a
    probe function, sampling it on every clock advance.  A following
    series holds a clock observer and MUST be :meth:`close`\\ d when its
    owner goes away (session detach, monitor teardown) or the observer
    leaks and keeps firing forever.
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self.samples: List[Tuple[int, float]] = []
        self._observer: Callable[[int, int], None] | None = None

    def record(self, value: float) -> None:
        self.samples.append((self._clock.now, value))

    def follow(self, probe: Callable[[], float]) -> None:
        """Sample ``probe()`` on every clock advance until closed."""
        if self._observer is not None:
            raise ValueError("time series is already following a probe")

        def observer(_old_ns: int, new_ns: int) -> None:
            self.samples.append((new_ns, float(probe())))

        self._observer = observer
        self._clock.subscribe(observer)

    def close(self) -> None:
        """Detach from the clock; idempotent."""
        if self._observer is not None:
            self._clock.unsubscribe(self._observer)
            self._observer = None

    @property
    def following(self) -> bool:
        return self._observer is not None

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def mean(self) -> float:
        if not self.samples:
            raise ValueError("no samples recorded")
        return sum(v for _, v in self.samples) / len(self.samples)
