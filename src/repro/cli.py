"""Command-line interface: drive the VMSH reproduction from a shell.

Examples::

    python -m repro demo
    python -m repro attach --hypervisor firecracker --no-seccomp -c "ls /"
    python -m repro generality
    python -m repro xfstests --quick
    python -m repro fio
    python -m repro phoronix
    python -m repro console-latency
    python -m repro debloat
    python -m repro snapshot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.guestos.version import ALL_TESTED_VERSIONS, KernelVersion
from repro.hypervisors import (
    CloudHypervisor,
    Crosvm,
    Firecracker,
    Kvmtool,
    Qemu,
)
from repro.testbed import Testbed

HYPERVISORS = {
    "qemu": Qemu,
    "kvmtool": Kvmtool,
    "firecracker": Firecracker,
    "crosvm": Crosvm,
    "cloud-hypervisor": CloudHypervisor,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VMSH (EuroSys'22) reproduction on a simulated KVM stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="attach a shell to a QEMU guest")

    p_attach = sub.add_parser("attach", help="attach VMSH to a chosen hypervisor")
    p_attach.add_argument("--hypervisor", choices=sorted(HYPERVISORS), default="qemu")
    p_attach.add_argument("--kernel", default="v5.10", help="guest kernel (e.g. v4.19)")
    p_attach.add_argument("--transport", choices=("mmio", "pci", "auto"), default="mmio")
    p_attach.add_argument("--mmio-mode", choices=("auto", "ioregionfd", "wrap_syscall"),
                          default="auto")
    p_attach.add_argument("--no-seccomp", action="store_true",
                          help="disable Firecracker's seccomp filter")
    p_attach.add_argument("--seccomp-aware", action="store_true",
                          help="use the thread-picking injection heuristic")
    p_attach.add_argument("-c", "--commands", action="append", default=[],
                          help="command(s) to run on the console")

    p_trace = sub.add_parser(
        "trace",
        help="dump a Perfetto trace of an observed fleet run "
             "(load the file in ui.perfetto.dev)",
    )
    p_trace.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                         help="master seed (default: the repo's pinned seed)")
    p_trace.add_argument("--fleet", type=int, default=8,
                         help="number of VMs to launch (default 8)")
    p_trace.add_argument("--out", default="vmsh-trace.json",
                         help="output path (default vmsh-trace.json)")
    p_trace.add_argument("--validate", action="store_true",
                         help="check the output against the trace-event "
                              "schema; non-zero exit on problems")

    p_metrics = sub.add_parser(
        "metrics", help="dump the metrics registry of an observed fleet run"
    )
    p_metrics.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                           help="master seed (default: the repo's pinned seed)")
    p_metrics.add_argument("--fleet", type=int, default=8,
                           help="number of VMs to launch (default 8)")
    p_metrics.add_argument("--format", choices=("prom", "json"), default="prom",
                           help="Prometheus text or JSON snapshot")
    p_metrics.add_argument("--out", default=None,
                           help="output path (default: stdout)")

    sub.add_parser("generality", help="Table 1: hypervisor + kernel matrix")
    p_xfs = sub.add_parser("xfstests", help="E1: run the xfstests comparison")
    p_xfs.add_argument("--quick", action="store_true", help="every 8th test only")
    sub.add_parser("fio", help="E5: fio across device configurations")
    sub.add_parser("phoronix", help="E4: the Phoronix Disk suite comparison")
    sub.add_parser("console-latency", help="E6: console round-trip latency")
    sub.add_parser("debloat", help="E7: top-40 Docker image de-bloat")
    p_snap = sub.add_parser(
        "snapshot",
        help="snapshot-pool cold starts + VM capture/clone/migrate demo",
    )
    p_snap.add_argument(
        "--cycles", type=int, default=8,
        help="scale-to-zero churn cycles (default 8)",
    )

    args = parser.parse_args(argv)
    handler = globals()[f"_cmd_{args.command.replace('-', '_')}"]
    return handler(args)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _cmd_demo(args: argparse.Namespace) -> int:
    testbed = Testbed()
    hv = testbed.launch_qemu()
    session = testbed.vmsh().attach(hv.pid)
    report = session.report
    print(f"attached to {hv.NAME} (pid {hv.pid})")
    print(f"  kernel {report.kernel_version} at {report.kernel_vbase:#x}, "
          f"ksymtab {report.ksymtab_layout}, dispatch {report.mmio_mode}")
    for command in ("ls /", "cat /var/lib/vmsh/etc/hostname", "ps"):
        result = session.console.run_command(command)
        print(f"$ {command}")
        for line in result.output.splitlines():
            print(f"  {line}")
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    testbed = Testbed()
    cls = HYPERVISORS[args.hypervisor]
    kwargs = {}
    if cls is Firecracker:
        kwargs["seccomp"] = not args.no_seccomp
        if args.seccomp_aware:
            kwargs["vmsh_seccomp_profile"] = True
    try:
        version = KernelVersion.parse(args.kernel)
    except ValueError as exc:
        print(f"error: {exc} (expected e.g. v5.10)", file=sys.stderr)
        return 2
    hv = testbed.launch(cls, guest_version=version, **kwargs)
    try:
        session = testbed.vmsh().attach(
            hv.pid,
            mmio_mode=args.mmio_mode,
            transport=args.transport,
            seccomp_aware=args.seccomp_aware,
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"attach failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    report = session.report
    print(f"attached: kernel {report.kernel_version}, ksymtab {report.ksymtab_layout}, "
          f"transport {report.transport}, dispatch {report.mmio_mode}, "
          f"{report.attach_ns / 1e6:.2f} ms virtual")
    for command in args.commands or ["ls /"]:
        result = session.console.run_command(command)
        print(f"$ {command}")
        for line in result.output.splitlines():
            print(f"  {line}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.bench.fleet_obs import run_observed_fleet
    from repro.obs.export import validate_trace_events

    tb = run_observed_fleet(seed=args.seed, fleet_size=args.fleet)
    payload = tb.obs.perfetto_json()
    out = pathlib.Path(args.out)
    out.write_text(payload)
    recorder = tb.obs.spans
    print(f"wrote {out} ({len(payload)} bytes, {len(recorder.spans)} spans "
          f"on {len(recorder.tracks())} tracks)")
    print("open it at https://ui.perfetto.dev (Open trace file)")
    if args.validate:
        problems = validate_trace_events(json.loads(payload))
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print("trace-event schema: ok")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.bench.fleet_obs import run_observed_fleet

    tb = run_observed_fleet(seed=args.seed, fleet_size=args.fleet)
    if args.format == "json":
        payload = tb.obs.metrics_json()
    else:
        payload = tb.obs.prometheus()
    if args.out is None:
        sys.stdout.write(payload)
    else:
        import pathlib

        out = pathlib.Path(args.out)
        out.write_text(payload)
        print(f"wrote {out} ({len(payload)} bytes, "
              f"{len(tb.obs.metrics_snapshot())} series)")
    return 0


def _cmd_generality(args: argparse.Namespace) -> int:
    from repro.errors import HypervisorNotSupportedError, SeccompViolationError

    print("hypervisors (Table 1):")
    for name, cls in sorted(HYPERVISORS.items()):
        testbed = Testbed()
        kwargs = {"seccomp": False} if cls is Firecracker else {}
        hv = testbed.launch(cls, **kwargs)
        try:
            testbed.vmsh().attach(hv.pid)
            print(f"  {name:18s} supported")
        except HypervisorNotSupportedError as exc:
            print(f"  {name:18s} unsupported ({exc})")
        except SeccompViolationError as exc:
            print(f"  {name:18s} blocked by seccomp ({exc})")
    print("kernels:")
    for version in ALL_TESTED_VERSIONS:
        testbed = Testbed()
        hv = testbed.launch_qemu(guest_version=version)
        session = testbed.vmsh().attach(hv.pid)
        print(f"  {str(version):8s} ksymtab={session.report.ksymtab_layout}")
    return 0


def _cmd_xfstests(args: argparse.Namespace) -> int:
    from repro.bench.xfstests_env import compare_environments

    results = compare_environments(quick=args.quick)
    for kind, res in results.items():
        passed, failed, skipped = res.counts
        print(f"{kind:10s} passed={passed} failed={failed} skipped={skipped} "
              f"{res.failed_ids()}")
    return 0


def _cmd_fio(args: argparse.Namespace) -> int:
    from repro.bench.harness import ENV_NAMES, make_env
    from repro.bench.workloads.fio import iops_job, run_fio, throughput_job
    from repro.units import MiB

    print(f"{'config':30s} {'tput MB/s':>10} {'IOPS':>10}")
    for name in ENV_NAMES:
        env = make_env(name, disk_size=256 * MiB)
        tput = run_fio(env, throughput_job("read"))
        env.drop_caches()
        iops = run_fio(env, iops_job("read"))
        print(f"{name:30s} {tput.value:10.1f} {iops.detail['iops']:10.0f}")
    return 0


def _cmd_phoronix(args: argparse.Namespace) -> int:
    from repro.bench.workloads.phoronix import average_slowdown, run_phoronix

    rows = run_phoronix()
    for row in sorted(rows, key=lambda r: -r.relative):
        print(f"{row.name:40s} {row.relative:5.2f}x")
    mean, std = average_slowdown(rows)
    print(f"\naverage {mean:.2f}x +- {std:.2f}  (paper: 1.5x +- 0.6)")
    return 0


def _cmd_console_latency(args: argparse.Namespace) -> int:
    from repro.bench.latency import run_console_comparison

    for result in run_console_comparison():
        print(f"{result.seat:14s} {result.mean_ms:6.3f} ms")
    return 0


def _cmd_debloat(args: argparse.Namespace) -> int:
    from repro.image.debloat import debloat_top40, summarize

    results = debloat_top40(Testbed())
    for r in sorted(results, key=lambda r: r.reduction):
        print(f"{r.image:14s} -{r.reduction * 100:5.1f}%  "
              f"({r.size_before >> 20} -> {r.size_after >> 20} MB)")
    stats = summarize(results)
    print(f"\nmean {stats['mean_reduction'] * 100:.1f}%  <10%: {stats['below_10pct']}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.units import MSEC, SEC
    from repro.usecases.serverless import VHivePlatform

    tb = Testbed()
    platform = VHivePlatform(tb, snapshot_pool=True)
    platform.deploy("resize", lambda p: {"ok": p["width"] * 2})
    latencies = []
    for cycle in range(args.cycles):
        t0 = tb.clock.now
        platform.invoke("resize", {"width": cycle})
        latencies.append(tb.clock.now - t0)
        tb.clock.advance(3 * SEC)
        platform.scale_down()
    hits, misses = tb.costs.count("faas_pool_hit"), tb.costs.count("faas_pool_miss")
    print(f"{'cycle':>5}  {'latency':>10}  path")
    for cycle, ns in enumerate(latencies):
        path = "cold boot + bake" if cycle == 0 else "pool restore"
        print(f"{cycle:>5}  {ns / MSEC:>8.2f}ms  {path}")
    steady = sum(latencies[1:]) / max(len(latencies) - 1, 1)
    print(f"\npool hit rate {hits}/{hits + misses}; steady-state "
          f"{steady / MSEC:.2f} ms vs {tb.costs.p.faas_cold_start_ns / MSEC:.0f} ms "
          f"cold start ({tb.costs.p.faas_cold_start_ns / steady:.1f}x)")

    hv = tb.launch_qemu()
    snap = tb.snapshot(hv)
    clone = tb.clone(snap)
    result = tb.migrate(clone)
    print(f"\nVM layer: captured pid {hv.pid} ({snap.cow.pages_total} pages), "
          f"cloned to pid {clone.pid}, migrated to "
          f"pid {result.dest_pid} on host #{len(tb.hosts)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
