"""Command-line interface: drive the VMSH reproduction from a shell.

Examples::

    python -m repro demo
    python -m repro attach --hypervisor firecracker --no-seccomp -c "ls /"
    python -m repro generality
    python -m repro xfstests --quick
    python -m repro fio
    python -m repro phoronix
    python -m repro console-latency
    python -m repro debloat
    python -m repro snapshot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.guestos.version import ALL_TESTED_VERSIONS, KernelVersion
from repro.hypervisors import (
    CloudHypervisor,
    Crosvm,
    Firecracker,
    Kvmtool,
    Qemu,
)
from repro.testbed import Testbed

HYPERVISORS = {
    "qemu": Qemu,
    "kvmtool": Kvmtool,
    "firecracker": Firecracker,
    "crosvm": Crosvm,
    "cloud-hypervisor": CloudHypervisor,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VMSH (EuroSys'22) reproduction on a simulated KVM stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="attach a shell to a QEMU guest")

    p_attach = sub.add_parser("attach", help="attach VMSH to a chosen hypervisor")
    p_attach.add_argument("--hypervisor", choices=sorted(HYPERVISORS), default="qemu")
    p_attach.add_argument("--kernel", default="v5.10", help="guest kernel (e.g. v4.19)")
    p_attach.add_argument("--transport", choices=("mmio", "pci", "auto"), default="mmio")
    p_attach.add_argument("--mmio-mode", choices=("auto", "ioregionfd", "wrap_syscall"),
                          default="auto")
    p_attach.add_argument("--no-seccomp", action="store_true",
                          help="disable Firecracker's seccomp filter")
    p_attach.add_argument("--seccomp-aware", action="store_true",
                          help="use the thread-picking injection heuristic")
    p_attach.add_argument("-c", "--commands", action="append", default=[],
                          help="command(s) to run on the console")

    p_trace = sub.add_parser(
        "trace",
        help="dump a Perfetto trace of an observed fleet run "
             "(load the file in ui.perfetto.dev)",
    )
    p_trace.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                         help="master seed (default: the repo's pinned seed)")
    p_trace.add_argument("--fleet", type=int, default=8,
                         help="number of VMs to launch (default 8)")
    p_trace.add_argument("--out", default="vmsh-trace.json",
                         help="output path (default vmsh-trace.json)")
    p_trace.add_argument("--validate", action="store_true",
                         help="check the output against the trace-event "
                              "schema; non-zero exit on problems")

    p_metrics = sub.add_parser(
        "metrics", help="dump the metrics registry of an observed fleet run"
    )
    p_metrics.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                           help="master seed (default: the repo's pinned seed)")
    p_metrics.add_argument("--fleet", type=int, default=8,
                           help="number of VMs to launch (default 8)")
    p_metrics.add_argument("--format", choices=("prom", "json"), default="prom",
                           help="Prometheus text or JSON snapshot")
    p_metrics.add_argument("--out", default=None,
                           help="output path (default: stdout)")

    sub.add_parser("generality", help="Table 1: hypervisor + kernel matrix")
    p_xfs = sub.add_parser("xfstests", help="E1: run the xfstests comparison")
    p_xfs.add_argument("--quick", action="store_true", help="every 8th test only")
    sub.add_parser("fio", help="E5: fio across device configurations")
    sub.add_parser("phoronix", help="E4: the Phoronix Disk suite comparison")
    sub.add_parser("console-latency", help="E6: console round-trip latency")
    sub.add_parser("debloat", help="E7: top-40 Docker image de-bloat")
    p_snap = sub.add_parser(
        "snapshot",
        help="snapshot-pool cold starts + VM capture/clone/migrate demo",
    )
    p_snap.add_argument(
        "--cycles", type=int, default=8,
        help="scale-to-zero churn cycles (default 8)",
    )

    p_traffic = sub.add_parser(
        "traffic",
        help="end-to-end serverless traffic over vmsh-net "
             "(fleet serving requests through the fabric, with chaos)",
    )
    p_traffic.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                           help="master seed (default: the repo's pinned seed)")
    p_traffic.add_argument("--functions", type=int, default=8,
                           help="functions to deploy (default 8)")
    p_traffic.add_argument("--shards", type=int, default=2,
                           help="control-plane shards (default 2)")
    p_traffic.add_argument("--requests", type=int, default=160,
                           help="requests to issue (default 160)")
    p_traffic.add_argument("--mode", choices=("open", "closed"), default="open",
                           help="open-loop paced or closed-loop workers")
    p_traffic.add_argument("--drop-rate", type=float, default=0.0,
                           help="fabric frame drop probability")
    p_traffic.add_argument("--no-chaos", action="store_true",
                           help="skip the mid-traffic attach / rollback / "
                                "noisy-neighbor legs")

    p_record = sub.add_parser(
        "record", help="record a full run to a replayable trace file"
    )
    p_record.add_argument("--scenario", choices=("fleet", "attach", "traffic"),
                          default="fleet")
    p_record.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                          help="master seed (default: the repo's pinned seed)")
    p_record.add_argument("--fleet", type=int, default=8,
                          help="fleet size for the fleet scenario")
    p_record.add_argument("--snapshot-mid-attach", action="store_true",
                          help="splice a snapshot/restore between two "
                               "ATTACH_STEPS (fleet scenario)")
    p_record.add_argument("--case", default=None,
                          help="JSON case file for the attach scenario")
    p_record.add_argument("--out", default="vmsh-run.json",
                          help="output recording (default vmsh-run.json)")

    p_replay = sub.add_parser(
        "replay",
        help="re-execute a recording and cross-check it event by event",
    )
    p_replay.add_argument("recording", help="path to a recorded run")
    p_replay.add_argument("--until", type=int, default=None, metavar="EVENT",
                          help="stop at recorded event N and dump the "
                               "span/metrics state instead of comparing to "
                               "the end")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided fuzzing of the attach pipeline "
             "(or --replay DIR to re-run a saved corpus)",
    )
    p_fuzz.add_argument("--cases", type=int, default=200,
                        help="number of cases to run (default 200)")
    p_fuzz.add_argument("--seed", type=lambda s: int(s, 0), default=None,
                        help="master seed (default: the repo's pinned seed)")
    p_fuzz.add_argument("--corpus-dir", default=None,
                        help="save shrunk failing cases here")
    p_fuzz.add_argument("--time-box", type=float, default=None, metavar="SEC",
                        help="stop after this much wall-clock time")
    p_fuzz.add_argument("--plant-bug", action="store_true",
                        help="arm the seeded invariant violation the smoke "
                             "job must rediscover")
    p_fuzz.add_argument("--require-planted", action="store_true",
                        help="exit non-zero unless the planted bug was "
                             "found AND no organic violations appeared")
    p_fuzz.add_argument("--replay", default=None, metavar="DIR",
                        help="replay every corpus entry in DIR instead of "
                             "fuzzing; exit non-zero if any fails to "
                             "reproduce")

    args = parser.parse_args(argv)
    handler = globals()[f"_cmd_{args.command.replace('-', '_')}"]
    return handler(args)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _cmd_demo(args: argparse.Namespace) -> int:
    testbed = Testbed()
    hv = testbed.launch_qemu()
    session = testbed.vmsh().attach(hv.pid)
    report = session.report
    print(f"attached to {hv.NAME} (pid {hv.pid})")
    print(f"  kernel {report.kernel_version} at {report.kernel_vbase:#x}, "
          f"ksymtab {report.ksymtab_layout}, dispatch {report.mmio_mode}")
    for command in ("ls /", "cat /var/lib/vmsh/etc/hostname", "ps"):
        result = session.console.run_command(command)
        print(f"$ {command}")
        for line in result.output.splitlines():
            print(f"  {line}")
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    testbed = Testbed()
    cls = HYPERVISORS[args.hypervisor]
    kwargs = {}
    if cls is Firecracker:
        kwargs["seccomp"] = not args.no_seccomp
        if args.seccomp_aware:
            kwargs["vmsh_seccomp_profile"] = True
    try:
        version = KernelVersion.parse(args.kernel)
    except ValueError as exc:
        print(f"error: {exc} (expected e.g. v5.10)", file=sys.stderr)
        return 2
    hv = testbed.launch(cls, guest_version=version, **kwargs)
    try:
        session = testbed.vmsh().attach(
            hv.pid,
            mmio_mode=args.mmio_mode,
            transport=args.transport,
            seccomp_aware=args.seccomp_aware,
        )
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"attach failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    report = session.report
    print(f"attached: kernel {report.kernel_version}, ksymtab {report.ksymtab_layout}, "
          f"transport {report.transport}, dispatch {report.mmio_mode}, "
          f"{report.attach_ns / 1e6:.2f} ms virtual")
    for command in args.commands or ["ls /"]:
        result = session.console.run_command(command)
        print(f"$ {command}")
        for line in result.output.splitlines():
            print(f"  {line}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.bench.fleet_obs import run_observed_fleet
    from repro.obs.export import validate_trace_events

    tb = run_observed_fleet(seed=args.seed, fleet_size=args.fleet)
    payload = tb.obs.perfetto_json()
    out = pathlib.Path(args.out)
    out.write_text(payload)
    recorder = tb.obs.spans
    print(f"wrote {out} ({len(payload)} bytes, {len(recorder.spans)} spans "
          f"on {len(recorder.tracks())} tracks)")
    print("open it at https://ui.perfetto.dev (Open trace file)")
    if args.validate:
        problems = validate_trace_events(json.loads(payload))
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print("trace-event schema: ok")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.bench.fleet_obs import run_observed_fleet

    tb = run_observed_fleet(seed=args.seed, fleet_size=args.fleet)
    if args.format == "json":
        payload = tb.obs.metrics_json()
    else:
        payload = tb.obs.prometheus()
    if args.out is None:
        sys.stdout.write(payload)
    else:
        import pathlib

        out = pathlib.Path(args.out)
        out.write_text(payload)
        print(f"wrote {out} ({len(payload)} bytes, "
              f"{len(tb.obs.metrics_snapshot())} series)")
    return 0


def _cmd_generality(args: argparse.Namespace) -> int:
    from repro.errors import HypervisorNotSupportedError, SeccompViolationError

    print("hypervisors (Table 1):")
    for name, cls in sorted(HYPERVISORS.items()):
        testbed = Testbed()
        kwargs = {"seccomp": False} if cls is Firecracker else {}
        hv = testbed.launch(cls, **kwargs)
        try:
            testbed.vmsh().attach(hv.pid)
            print(f"  {name:18s} supported")
        except HypervisorNotSupportedError as exc:
            print(f"  {name:18s} unsupported ({exc})")
        except SeccompViolationError as exc:
            print(f"  {name:18s} blocked by seccomp ({exc})")
    print("kernels:")
    for version in ALL_TESTED_VERSIONS:
        testbed = Testbed()
        hv = testbed.launch_qemu(guest_version=version)
        session = testbed.vmsh().attach(hv.pid)
        print(f"  {str(version):8s} ksymtab={session.report.ksymtab_layout}")
    return 0


def _cmd_xfstests(args: argparse.Namespace) -> int:
    from repro.bench.xfstests_env import compare_environments

    results = compare_environments(quick=args.quick)
    for kind, res in results.items():
        passed, failed, skipped = res.counts
        print(f"{kind:10s} passed={passed} failed={failed} skipped={skipped} "
              f"{res.failed_ids()}")
    return 0


def _cmd_fio(args: argparse.Namespace) -> int:
    from repro.bench.harness import ENV_NAMES, make_env
    from repro.bench.workloads.fio import iops_job, run_fio, throughput_job
    from repro.units import MiB

    print(f"{'config':30s} {'tput MB/s':>10} {'IOPS':>10}")
    for name in ENV_NAMES:
        env = make_env(name, disk_size=256 * MiB)
        tput = run_fio(env, throughput_job("read"))
        env.drop_caches()
        iops = run_fio(env, iops_job("read"))
        print(f"{name:30s} {tput.value:10.1f} {iops.detail['iops']:10.0f}")
    return 0


def _cmd_phoronix(args: argparse.Namespace) -> int:
    from repro.bench.workloads.phoronix import average_slowdown, run_phoronix

    rows = run_phoronix()
    for row in sorted(rows, key=lambda r: -r.relative):
        print(f"{row.name:40s} {row.relative:5.2f}x")
    mean, std = average_slowdown(rows)
    print(f"\naverage {mean:.2f}x +- {std:.2f}  (paper: 1.5x +- 0.6)")
    return 0


def _cmd_console_latency(args: argparse.Namespace) -> int:
    from repro.bench.latency import run_console_comparison

    for result in run_console_comparison():
        print(f"{result.seat:14s} {result.mean_ms:6.3f} ms")
    return 0


def _cmd_debloat(args: argparse.Namespace) -> int:
    from repro.image.debloat import debloat_top40, summarize

    results = debloat_top40(Testbed())
    for r in sorted(results, key=lambda r: r.reduction):
        print(f"{r.image:14s} -{r.reduction * 100:5.1f}%  "
              f"({r.size_before >> 20} -> {r.size_after >> 20} MB)")
    stats = summarize(results)
    print(f"\nmean {stats['mean_reduction'] * 100:.1f}%  <10%: {stats['below_10pct']}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.units import MSEC, SEC
    from repro.usecases.serverless import VHivePlatform

    tb = Testbed()
    platform = VHivePlatform(tb, snapshot_pool=True)
    platform.deploy("resize", lambda p: {"ok": p["width"] * 2})
    latencies = []
    for cycle in range(args.cycles):
        t0 = tb.clock.now
        platform.invoke("resize", {"width": cycle})
        latencies.append(tb.clock.now - t0)
        tb.clock.advance(3 * SEC)
        platform.scale_down()
    hits, misses = tb.costs.count("faas_pool_hit"), tb.costs.count("faas_pool_miss")
    print(f"{'cycle':>5}  {'latency':>10}  path")
    for cycle, ns in enumerate(latencies):
        path = "cold boot + bake" if cycle == 0 else "pool restore"
        print(f"{cycle:>5}  {ns / MSEC:>8.2f}ms  {path}")
    steady = sum(latencies[1:]) / max(len(latencies) - 1, 1)
    print(f"\npool hit rate {hits}/{hits + misses}; steady-state "
          f"{steady / MSEC:.2f} ms vs {tb.costs.p.faas_cold_start_ns / MSEC:.0f} ms "
          f"cold start ({tb.costs.p.faas_cold_start_ns / steady:.1f}x)")

    hv = tb.launch_qemu()
    snap = tb.snapshot(hv)
    clone = tb.clone(snap)
    result = tb.migrate(clone)
    print(f"\nVM layer: captured pid {hv.pid} ({snap.cow.pages_total} pages), "
          f"cloned to pid {clone.pid}, migrated to "
          f"pid {result.dest_pid} on host #{len(tb.hosts)}")
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.units import MSEC
    from repro.usecases.traffic import run_traffic

    chaos = () if args.no_chaos else ("attach", "rollback", "noisy")
    tb, plane = run_traffic(
        seed=args.seed,
        functions=args.functions,
        shards=args.shards,
        requests=args.requests,
        mode=args.mode,
        drop_rate=args.drop_rate,
        chaos=chaos,
    )
    s = plane.summary()
    lat = s["latency_ns"]
    print(f"{s['requests']} requests over vmsh-net "
          f"({args.mode} loop, {args.shards} shards, "
          f"{s['servers']} guest servers)")
    print(f"  completed {s['completed']}  timeouts {s['timeouts']}  "
          f"front-door {s['front_door']}")
    print(f"  latency p50 {lat['p50'] / MSEC:.2f} ms  "
          f"p99 {lat['p99'] / MSEC:.2f} ms  "
          f"p999 {lat['p999'] / MSEC:.2f} ms")
    print(f"  fabric: {s['fabric_delivered']} frames delivered, "
          f"{s['fabric_dropped']} dropped; "
          f"{s['junk_frames']} junk, {s['flood_frames']} flood")
    if s["attach_log"]:
        print(f"  chaos: {', '.join(s['attach_log'])}")
    print(f"  virtual time {s['end_ns'] / MSEC:.1f} ms")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.replay.recording import RunRecorder
    from repro.replay.scenarios import run_scenario

    if args.scenario == "fleet":
        params = {
            "seed": args.seed,
            "fleet_size": args.fleet,
            "snapshot_mid_attach": args.snapshot_mid_attach,
        }
    elif args.scenario == "traffic":
        params = {"seed": args.seed}
    else:
        if args.case is None:
            print("error: --scenario attach needs --case FILE", file=sys.stderr)
            return 2
        params = {"case": json.loads(pathlib.Path(args.case).read_text())}
    recorder = RunRecorder(args.scenario, params)
    result = run_scenario(args.scenario, params, on_testbed=recorder.attach)
    recording = recorder.finish(outcome=result.outcome)
    out = recording.save(args.out)
    print(f"wrote {out} ({len(recording.events)} events, "
          f"clock end {recording.clock_end_ns} ns, "
          f"{recording.sched_turns} scheduler turns, "
          f"outcome {recording.outcome})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.replay.recording import Recording
    from repro.replay.replayer import Replayer

    recording = Recording.load(args.recording)
    report = Replayer().replay(recording, until=args.until)
    if args.until is not None:
        if report.dump is None:
            print("replay ended before reaching the requested event",
                  file=sys.stderr)
            return 1
        dump = report.dump
        print(f"stopped at recorded event {dump['stopped_at']} "
              f"(t={dump['time_ns']}ns, scheduler turn {dump['sched_turn']})")
        print(f"open spans: {', '.join(dump['open_spans']) or 'none'}")
        print(f"open attach steps: {', '.join(dump['open_steps']) or 'none'}")
        print("recent events:")
        for event in dump["recent_events"]:
            print(f"  {event}")
        print("metrics:")
        print(json.dumps(dump["metrics"], indent=1, sort_keys=True))
        return 0
    if report.matched:
        print(f"replay matched: {report.events_checked} events identical "
              f"(outcome {report.outcome})")
        return 0
    print(report.divergence.describe(), file=sys.stderr)
    return 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.replay.corpus import load_entries, replay_entry
    from repro.replay.fuzzer import AttachFuzzer
    from repro.sim import rng as simrng

    if args.replay is not None:
        entries = load_entries(args.replay)
        if not entries:
            print(f"no corpus entries under {args.replay}", file=sys.stderr)
            return 1
        failed = 0
        for path, entry in entries:
            verdict = replay_entry(entry)
            status = "reproduced" if verdict["reproduced"] else "LOST"
            print(f"{path.name}: {status} "
                  f"(expected {verdict['expected']}, "
                  f"observed {verdict['observed']})")
            if not verdict["reproduced"]:
                failed += 1
        print(f"{len(entries) - failed}/{len(entries)} entries reproduced")
        return 1 if failed else 0

    seed = simrng.MASTER_SEED if args.seed is None else args.seed
    fuzzer = AttachFuzzer(
        master_seed=seed,
        corpus_dir=args.corpus_dir,
        plant_bug=args.plant_bug,
        log=print,
    )
    report = fuzzer.run(args.cases, time_box_s=args.time_box)
    print(f"{report.cases_run} cases in {report.elapsed_s:.1f}s "
          f"({report.cases_per_s:.1f}/s), "
          f"{len(report.coverage)} coverage keys, "
          f"{report.interesting} coverage-novel cases, "
          f"{len(report.failures)} violations")
    for failure in report.failures:
        print(f"  {failure.describe()}")
        if failure.corpus_path:
            print(f"    saved: {failure.corpus_path}")
    organic = [f for f in report.failures if not f.requires_plant]
    if args.require_planted:
        if not report.found_planted:
            print("FAIL: the planted invariant violation was not rediscovered",
                  file=sys.stderr)
            return 1
        if organic:
            print("FAIL: organic (non-planted) violations found",
                  file=sys.stderr)
            return 1
        return 0
    return 1 if organic else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
