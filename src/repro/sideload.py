"""The SELF side-loadable library format.

The real VMSH builds its guest kernel library as a shared ELF object
with a trampoline entry point and fixes up kernel-function references
with a custom binary loader (§5).  This module defines our equivalent
on-disk (well, in-guest-memory) format — "SELF", a SidE-Loadable
Format — shared by the builder (VMSH side) and the interpreter (guest
side).  It is a plain byte format: the guest runtime only ever sees the
bytes VMSH actually wrote into guest memory, so any mistake in VMSH's
symbol resolution, relocation patching or page-table mapping surfaces
as a parse failure or a jump into garbage.

Layout (little-endian)::

    0x00  16s  magic "SELF-VMSHLIB\\x00\\x00\\x00\\x00"
    0x10  u32  format version (1)
    0x14  u32  total size
    0x18  u32  program-id offset     (NUL-terminated ASCII)
    0x1c  u32  reloc table offset
    0x20  u32  reloc count
    0x24  u32  config offset
    0x28  u32  config length
    0x2c  u32  payload offset        (embedded stage-2 binary)
    0x30  u32  payload length
    0x34  u32  scratch offset        (trampoline register save area)
    0x38  u32  entry offset          (== 0: entry at blob base)

Relocation entry (40 bytes)::

    32s  symbol name (NUL padded)
    u64  resolved value — zero as built, patched by the loader

Config is a TLV sequence: ``u16 key length, key, u32 value length,
value`` — flexible enough to carry device windows, per-version struct
payloads and the spawn command.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.arch import ARCHES, Arch
from repro.errors import SideloadError

SELF_MAGIC = b"SELF-VMSHLIB\x00\x00\x00\x00"
FORMAT_VERSION = 1
HEADER_SIZE = 0x40
RELOC_ENTRY_SIZE = 40
#: Default trampoline scratch area: sized for the *largest* register
#: file of any supported arch, so a blob built without an explicit
#: arch still fits everywhere.  Arch-aware callers pass ``arch=`` to
#: :func:`build_blob` and get exactly ``arch.scratch_size`` bytes —
#: derived from the register tuple, never hand-counted, so a new port
#: cannot silently overflow its save area.
SCRATCH_SIZE = max(arch.scratch_size for arch in ARCHES.values())


@dataclass(frozen=True)
class RelocEntry:
    name: str
    offset: int       # byte offset of the u64 value slot within the blob
    value: int


@dataclass
class SelfBlob:
    """Parsed view of a SELF blob."""

    program_id: str
    relocs: List[RelocEntry]
    config: Dict[str, bytes]
    payload: bytes
    scratch_offset: int
    entry_offset: int
    total_size: int

    @property
    def scratch_size(self) -> int:
        """Bytes of trampoline save area this blob actually carries."""
        return self.total_size - self.scratch_offset


def pack_config(config: Dict[str, bytes]) -> bytes:
    out = bytearray()
    for key in sorted(config):
        encoded_key = key.encode("ascii")
        value = config[key]
        out += struct.pack("<H", len(encoded_key)) + encoded_key
        out += struct.pack("<I", len(value)) + value
    return bytes(out)


def unpack_config(data: bytes) -> Dict[str, bytes]:
    config: Dict[str, bytes] = {}
    pos = 0
    while pos < len(data):
        try:
            (key_len,) = struct.unpack_from("<H", data, pos)
            pos += 2
            key = data[pos : pos + key_len].decode("ascii")
            pos += key_len
            (value_len,) = struct.unpack_from("<I", data, pos)
            pos += 4
            value = bytes(data[pos : pos + value_len])
            pos += value_len
        except (struct.error, UnicodeDecodeError) as exc:
            raise SideloadError(f"corrupt SELF config at byte {pos}: {exc}") from exc
        config[key] = value
    return config


def build_blob(
    program_id: str,
    reloc_names: List[str],
    config: Dict[str, bytes],
    payload: bytes,
    arch: Arch = None,
) -> bytes:
    """Assemble a SELF blob with zeroed relocation slots.

    With ``arch``, the trampoline scratch area is sized to that arch's
    register file (``arch.scratch_size``); without, it falls back to
    the max-over-arches :data:`SCRATCH_SIZE`.
    """
    scratch_size = arch.scratch_size if arch is not None else SCRATCH_SIZE
    encoded_id = program_id.encode("ascii") + b"\x00"
    program_id_off = HEADER_SIZE
    reloc_off = program_id_off + len(encoded_id)
    reloc_off = (reloc_off + 7) & ~7
    config_bytes = pack_config(config)
    config_off = reloc_off + len(reloc_names) * RELOC_ENTRY_SIZE
    payload_off = config_off + len(config_bytes)
    payload_off = (payload_off + 7) & ~7
    scratch_off = payload_off + len(payload)
    scratch_off = (scratch_off + 7) & ~7
    total = scratch_off + scratch_size

    blob = bytearray(total)
    struct.pack_into(
        "<16sIIIIIIIIIII",
        blob,
        0,
        SELF_MAGIC,
        FORMAT_VERSION,
        total,
        program_id_off,
        reloc_off,
        len(reloc_names),
        config_off,
        len(config_bytes),
        payload_off,
        len(payload),
        scratch_off,
        0,  # entry offset: blob base
    )
    blob[program_id_off : program_id_off + len(encoded_id)] = encoded_id
    for index, name in enumerate(reloc_names):
        encoded = name.encode("ascii")
        if len(encoded) > 31:
            raise SideloadError(f"symbol name too long: {name}")
        base = reloc_off + index * RELOC_ENTRY_SIZE
        blob[base : base + len(encoded)] = encoded
        # value slot (offset base+32) stays zero until the loader patches it
    blob[config_off : config_off + len(config_bytes)] = config_bytes
    blob[payload_off : payload_off + len(payload)] = payload
    return bytes(blob)


def reloc_slot_offset(blob: bytes, index: int) -> int:
    """Byte offset of relocation ``index``'s value slot."""
    header = struct.unpack_from("<16sIIIIIIIIIII", blob, 0)
    reloc_off, reloc_count = header[4], header[5]
    if not 0 <= index < reloc_count:
        raise SideloadError(f"relocation index {index} out of range")
    return reloc_off + index * RELOC_ENTRY_SIZE + 32


def parse_blob(read: Callable[[int, int], bytes]) -> SelfBlob:
    """Parse a SELF blob through a ``read(offset, length)`` accessor.

    This is what the guest runtime does when the instruction pointer
    lands on VMSH's library: it reads the header *from guest memory*
    and refuses anything that does not check out.
    """
    header_bytes = read(0, HEADER_SIZE)
    (
        magic,
        version,
        total,
        program_id_off,
        reloc_off,
        reloc_count,
        config_off,
        config_len,
        payload_off,
        payload_len,
        scratch_off,
        entry_off,
    ) = struct.unpack_from("<16sIIIIIIIIIII", header_bytes, 0)
    if magic != SELF_MAGIC:
        raise SideloadError(f"bad SELF magic {magic!r}")
    if version != FORMAT_VERSION:
        raise SideloadError(f"unsupported SELF format version {version}")
    for name, offset, span in (
        ("program id", program_id_off, 1),
        ("reloc table", reloc_off, reloc_count * RELOC_ENTRY_SIZE),
        ("config", config_off, config_len),
        # The scratch area runs to the end of the blob; its size is
        # arch-dependent, so only require that it is non-degenerate.
        ("payload", payload_off, payload_len),
        ("scratch", scratch_off, 8),
    ):
        if offset < HEADER_SIZE or offset + span > total:
            raise SideloadError(f"SELF {name} section out of bounds")

    id_bytes = read(program_id_off, min(256, total - program_id_off))
    nul = id_bytes.find(b"\x00")
    if nul < 0:
        raise SideloadError("unterminated SELF program id")
    program_id = id_bytes[:nul].decode("ascii")

    relocs: List[RelocEntry] = []
    table = read(reloc_off, reloc_count * RELOC_ENTRY_SIZE)
    for index in range(reloc_count):
        base = index * RELOC_ENTRY_SIZE
        raw_name = table[base : base + 32].split(b"\x00", 1)[0]
        (value,) = struct.unpack_from("<Q", table, base + 32)
        relocs.append(
            RelocEntry(name=raw_name.decode("ascii"), offset=reloc_off + base + 32, value=value)
        )

    config = unpack_config(read(config_off, config_len))
    payload = read(payload_off, payload_len)
    return SelfBlob(
        program_id=program_id,
        relocs=relocs,
        config=config,
        payload=payload,
        scratch_offset=scratch_off,
        entry_offset=entry_off,
        total_size=total,
    )
