"""VMSH reproduction: hypervisor-agnostic guest overlays for VMs.

A faithful, fully-simulated Python reimplementation of

    Thalheim, Okelmann, Unnibhavi, Gouicem, Bhatotia:
    "VMSH: Hypervisor-agnostic Guest Overlays for VMs", EuroSys 2022.

Quick start::

    from repro.testbed import Testbed

    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    print(session.console.run_command("ls /").output)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
