"""Fleet-scale byte-identity under every PR 8 fast path.

The hot-path work — slab-pooled heap entries, the zero-delay ready
ring, batched dispatch, interned metric handles, span levels, the
tracer's zero-copy emit — is only admissible if it never perturbs the
simulated execution.  This suite turns the whole optimized bundle on
at once (fast loop + ready ring + "fleet" span level + WARN logging +
indexed warm lookup) and demands that two fresh same-seed control-plane
runs export **byte-identical** metrics and Perfetto JSON, at fleet
size 8 and again at 64 where the sharded admission paths, spills and
compaction actually fire.
"""

from repro.testbed import Testbed
from repro.usecases.fleet import FleetControlPlane

from tests.chaos.conftest import MASTER_SEED

INVOCATIONS_PER_FN = 4


def _plane_exports(fleet, seed):
    """One optimized-bundle control-plane run -> (metrics, perfetto)."""
    tb = Testbed(seed=seed, obs_level="fleet")
    sched = tb.scheduler
    sched.fast = True
    sched.enable_ready_ring()
    shards = max(1, fleet // 16)
    plane = FleetControlPlane(
        tb,
        shards=shards,
        max_inflight_per_shard=4,
        log_level="WARN",
        indexed=True,
    )
    names = [f"fn-{n}" for n in range(fleet)]
    for name in names:
        plane.deploy(name, lambda payload: {"ok": payload["n"]})
    plane.start_autoscalers(sched, period_ns=1_000_000_000)
    total = fleet * INVOCATIONS_PER_FN
    tasks = [
        sched.spawn(plane.invoke_task(names[k % fleet], {"n": k}), label="inv")
        for k in range(total)
    ]
    results = sched.run(*tasks, max_events=20_000_000)
    plane.stop_autoscalers()
    assert results == [{"ok": k} for k in range(total)]
    return tb.obs.metrics_json(), tb.obs.perfetto_json()


def _assert_byte_identical(fleet, seed):
    metrics_a, trace_a = _plane_exports(fleet, seed)
    metrics_b, trace_b = _plane_exports(fleet, seed)
    assert metrics_a == metrics_b
    assert trace_a == trace_b
    # Not a trivial pass: the runs actually exercised the plane.
    assert "fleet" in metrics_a and "invocations" in metrics_a
    assert "traceEvents" in trace_a


def test_fleet8_exports_are_byte_identical():
    _assert_byte_identical(8, MASTER_SEED)


def test_fleet64_exports_are_byte_identical():
    _assert_byte_identical(64, MASTER_SEED)


def test_fleet8_second_seed_differs_but_reproduces():
    # The identity is a property of the seed, not an accident of the
    # fast paths hiding all variation: a different seed explores a
    # different (still byte-reproducible) execution.
    metrics_a, _ = _plane_exports(8, MASTER_SEED)
    metrics_b, _ = _plane_exports(8, MASTER_SEED ^ 0x5A5A)
    assert metrics_a != metrics_b
