"""Snapshot/restore must be invisible to deterministic replay.

The PR 6 acceptance bar: restoring a VM — even one with a live
attached VMSH session, even mid-attach between two pipeline steps —
round-trips byte-identically.  A run that snapshots and restores on
the pinned seed must produce the same tracer events, metrics registry
and Perfetto export as a twin run that never snapshotted, and the
serverless snapshot pool must replay exactly across same-seed runs.
"""

import pytest

from repro.core.snapshot import VmSnapshot
from repro.core.vmsh import ATTACH_STEPS
from repro.testbed import Testbed
from repro.units import SEC
from repro.usecases.serverless import VHivePlatform

from .conftest import MASTER_SEED, snapshot_state, assert_restored


def _drive(tb, gen, boundary=None, interfere=None):
    """Run an ``attach_task`` generator to completion, synchronously.

    String yields are step boundaries; int yields are timed sleeps
    (advanced inline, exactly as the sync ``attach`` would).  When the
    ``boundary`` step yields, ``interfere`` runs once — *between* two
    ATTACH_STEPS, which is the seam the snapshot has to survive.
    """
    y = gen.send(None)
    try:
        while True:
            if isinstance(y, int):
                tb.clock.advance(y)
            elif y == boundary and interfere is not None:
                interfere()
                interfere = None
            y = gen.send(None)
    except StopIteration as stop:
        return stop.value


def _attach_run(snapshot_at=None):
    """One traced attach on the pinned seed, optionally snapshotting
    (and immediately restoring) at the given step boundary."""
    tb = Testbed(trace=True, seed=MASTER_SEED)
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()

    def interfere():
        snap = VmSnapshot.capture(hv)       # silent core path
        snap.restore_into(hv)

    session = _drive(
        tb, vmsh.attach_task(hv.pid),
        boundary=snapshot_at,
        interfere=interfere if snapshot_at is not None else None,
    )
    out = session.console.run_command("cat /var/lib/vmsh/etc/hostname").output
    return tb, hv, vmsh, session, out


@pytest.mark.parametrize("boundary", ["snoop_memslots", "load_library"])
def test_mid_attach_snapshot_restore_is_invisible(boundary):
    """Snapshot + restore between two ATTACH_STEPS changes nothing.

    ``snoop_memslots`` is before any device fds exist; ``load_library``
    is after irqfd routes, ioeventfds and the blob memslot are armed —
    the restore has to reconcile all of them back bit-identically.
    """
    assert boundary in ATTACH_STEPS
    base_tb, base_hv, base_vmsh, _, base_out = _attach_run(snapshot_at=None)
    snap_tb, snap_hv, snap_vmsh, _, snap_out = _attach_run(snapshot_at=boundary)
    assert snap_out == base_out == "guest"
    assert_restored(
        snapshot_state(base_tb, base_hv, base_vmsh),
        snapshot_state(snap_tb, snap_hv, snap_vmsh),
    )
    assert snap_tb.clock.now == base_tb.clock.now
    assert list(snap_tb.tracer.events) == list(base_tb.tracer.events)
    assert snap_tb.obs.metrics_json() == base_tb.obs.metrics_json()
    assert snap_tb.obs.perfetto_json() == base_tb.obs.perfetto_json()


def test_attached_session_roundtrip_is_byte_identical():
    """Capture+restore of a VM with a live session is a perfect no-op:
    a twin run that never snapshotted is indistinguishable."""

    def run(snapshot=False):
        tb = Testbed(trace=True, seed=MASTER_SEED)
        hv = tb.launch_qemu()
        vmsh = tb.vmsh()
        session = vmsh.attach(hv.pid)
        if snapshot:
            snap = VmSnapshot.capture(hv, session=session)
            snap.restore_into(hv, session=session)
        out = session.console.run_command("ls /var/lib/vmsh").output
        return tb, hv, vmsh, out

    base_tb, base_hv, base_vmsh, base_out = run(snapshot=False)
    snap_tb, snap_hv, snap_vmsh, snap_out = run(snapshot=True)
    assert snap_out == base_out
    assert_restored(
        snapshot_state(base_tb, base_hv, base_vmsh),
        snapshot_state(snap_tb, snap_hv, snap_vmsh),
    )
    assert list(snap_tb.tracer.events) == list(base_tb.tracer.events)
    assert snap_tb.obs.metrics_json() == base_tb.obs.metrics_json()
    assert snap_tb.obs.perfetto_json() == base_tb.obs.perfetto_json()


def test_restore_rolls_back_attached_session_divergence():
    """Post-capture activity (console traffic, dirtied guest memory)
    is fully unwound; the session stays live afterwards."""
    tb = Testbed(seed=MASTER_SEED)
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    session = vmsh.attach(hv.pid)
    before = snapshot_state(tb, hv, vmsh)
    snap = VmSnapshot.capture(hv, session=session)
    session.console.run_command("ls /")
    session.console.run_command("cat /etc/os-release")
    hv.vm.guest_memory().write(hv.guest.cr3, b"\xff" * 32)
    snap.restore_into(hv, session=session)
    assert_restored(before, snapshot_state(tb, hv, vmsh))
    out = session.console.run_command("cat /var/lib/vmsh/etc/hostname")
    assert out.output == "guest"
    session.detach()


def test_detach_after_restore_is_idempotent():
    tb = Testbed(seed=MASTER_SEED)
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    snap = VmSnapshot.capture(hv, session=session)
    snap.restore_into(hv, session=session)
    session.detach()
    session.detach()                        # second detach: a no-op
    assert session.detached
    # A fresh attach to the restored VM still works.
    again = tb.vmsh().attach(hv.pid)
    assert "guest" in again.console.run_command(
        "cat /var/lib/vmsh/etc/hostname"
    ).output
    again.detach()


def test_snapshot_pool_fleet_replays_exactly():
    """Bake + clone + restore in the serverless pool is deterministic:
    two same-seed runs agree on every event, metric and timestamp."""

    def run():
        tb = Testbed(trace=True, seed=MASTER_SEED)
        platform = VHivePlatform(tb, snapshot_pool=True)
        platform.deploy("resize", lambda p: {"ok": p["width"] * 2})
        outputs = [platform.invoke("resize", {"width": 2})]
        tb.clock.advance(3 * SEC)
        platform.scale_down()
        outputs.append(platform.invoke("resize", {"width": 3}))
        return tb, outputs

    tb_a, out_a = run()
    tb_b, out_b = run()
    assert out_a == out_b == [{"ok": 4}, {"ok": 6}]
    assert tb_a.clock.now == tb_b.clock.now
    assert list(tb_a.tracer.events) == list(tb_b.tracer.events)
    assert tb_a.obs.metrics_json() == tb_b.obs.metrics_json()
    assert tb_a.obs.perfetto_json() == tb_b.obs.perfetto_json()
