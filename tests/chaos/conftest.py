"""Shared fixtures for the chaos suite.

Every chaos test runs against a fresh :class:`~repro.testbed.Testbed`
with a scripted or seed-derived :class:`~repro.sim.faults.FaultPlan`
armed on the host.  ``VMSH_CHAOS_SEED`` selects the master seed for
the derived schedules (``benchmarks/run_tier1.sh`` pins it), so a
failing chaos run can be replayed exactly by exporting the same value.
"""

import os

from repro.testbed import Testbed

#: Master seed for seed-derived fault schedules ("VMSH" in ASCII).
MASTER_SEED = int(os.environ.get("VMSH_CHAOS_SEED", "0x564D5348"), 0)

#: Every hypervisor flavor the paper targets (Table 1), with the
#: launch/attach arguments that make a *fault-free* attach succeed:
#: Firecracker must run without its seccomp filters (§6.2) and Cloud
#: Hypervisor's MSI-X-only irqchip needs the PCI transport.
FLAVORS = {
    "qemu": ("launch_qemu", {}, {}),
    "kvmtool": ("launch_kvmtool", {}, {}),
    "firecracker": ("launch_firecracker", {"seccomp": False}, {}),
    "crosvm": ("launch_crosvm", {}, {}),
    "cloud_hypervisor": ("launch_cloud_hypervisor", {}, {"transport": "pci"}),
}


def launch_flavor(flavor: str, trace: bool = False, ioregionfd: bool = True):
    """Fresh testbed + booted hypervisor of ``flavor``.

    Returns ``(tb, hv, attach_kwargs)``.
    """
    launch_name, launch_kwargs, attach_kwargs = FLAVORS[flavor]
    tb = Testbed(ioregionfd=ioregionfd, trace=trace)
    hv = getattr(tb, launch_name)(**launch_kwargs)
    return tb, hv, dict(attach_kwargs)


def snapshot_state(tb, hv, vmsh):
    """Everything a failed attach must leave bit-identical.

    Covers the hypervisor process (fd table, thread run state, tracer),
    the KVM VM (memslots, irqfd/MSI routes, ioregions, ioeventfds, vCPU
    register files), the guest page-table root page, and the VMSH
    process itself (fds, capabilities) plus host-global eBPF programs
    and syscall hooks.
    """
    vm = hv.vm
    return {
        "hv_fds": tuple(fd for fd, _ in hv.process.fds.items()),
        "hv_threads": tuple((t.tid, t.stopped) for t in hv.process.threads),
        "hv_tracer": None if hv.process.tracer is None else hv.process.tracer.pid,
        "memslots": tuple(
            (s.slot, s.gpa, s.size, s.hva) for s in vm.memslots()
        ),
        "irq_routes": tuple(sorted(vm.irq_routes)),
        "msi_routes": tuple(sorted(vm._msi_routes)),
        "ioregions": len(vm.ioregions),
        "ioeventfds": len(vm.ioeventfds),
        "vcpu_regs": tuple(tuple(sorted(v.regs.items())) for v in vm.vcpus),
        "vcpu_sregs": tuple(tuple(sorted(v.sregs.items())) for v in vm.vcpus),
        "pml4": vm.guest_memory().read(hv.guest.cr3, 4096),
        "ebpf": tuple(
            (point, len(progs))
            for point, progs in sorted(tb.host._ebpf_programs.items())
            if progs
        ),
        "syscall_hooks": tuple(sorted(tb.host._syscall_hooks)),
        "vmsh_fds": tuple(fd for fd, _ in vmsh.process.fds.items()),
        "vmsh_caps": frozenset(vmsh.process.capabilities),
    }


def assert_restored(before, after):
    """Field-by-field comparison so a mismatch names what leaked."""
    assert before.keys() == after.keys()
    for key in before:
        assert after[key] == before[key], f"state leaked across rollback: {key}"
