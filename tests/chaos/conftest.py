"""Shared fixtures for the chaos suite.

Every chaos test runs against a fresh :class:`~repro.testbed.Testbed`
with a scripted or seed-derived :class:`~repro.sim.faults.FaultPlan`
armed on the host.  ``VMSH_CHAOS_SEED`` selects the master seed for
the derived schedules (``benchmarks/run_tier1.sh`` pins it), so a
failing chaos run can be replayed exactly by exporting the same value.
"""

import os

from repro.replay.invariants import diff_fingerprints, state_fingerprint
from repro.testbed import Testbed

#: Master seed for seed-derived fault schedules ("VMSH" in ASCII).
MASTER_SEED = int(os.environ.get("VMSH_CHAOS_SEED", "0x564D5348"), 0)

#: Every hypervisor flavor the paper targets (Table 1), with the
#: launch/attach arguments that make a *fault-free* attach succeed:
#: Firecracker must run without its seccomp filters (§6.2) and Cloud
#: Hypervisor's MSI-X-only irqchip needs the PCI transport.
FLAVORS = {
    "qemu": ("launch_qemu", {}, {}),
    "kvmtool": ("launch_kvmtool", {}, {}),
    "firecracker": ("launch_firecracker", {"seccomp": False}, {}),
    "crosvm": ("launch_crosvm", {}, {}),
    "cloud_hypervisor": ("launch_cloud_hypervisor", {}, {"transport": "pci"}),
    # The riscv64 leg of the matrix (PR 9): the same fault grid on the
    # third ISA, where attach always rides the wrap_syscall fallback.
    "qemu_riscv64": ("launch_qemu", {}, {}),
}

#: guest architecture per flavor (absent = x86_64); mirrors
#: ``repro.replay.scenarios.FLAVOR_ARCH`` so the chaos matrix and the
#: fuzzer agree on what a flavor means.
FLAVOR_ARCH = {
    "qemu_riscv64": "riscv64",
}


def launch_flavor(flavor: str, trace: bool = False, ioregionfd: bool = True):
    """Fresh testbed + booted hypervisor of ``flavor``.

    Returns ``(tb, hv, attach_kwargs)``.
    """
    launch_name, launch_kwargs, attach_kwargs = FLAVORS[flavor]
    tb = Testbed(
        ioregionfd=ioregionfd, trace=trace,
        arch=FLAVOR_ARCH.get(flavor, "x86_64"),
    )
    hv = getattr(tb, launch_name)(**launch_kwargs)
    return tb, hv, dict(attach_kwargs)


# The fingerprint lives in the replay package so the fuzzer's
# invariant checks and the chaos matrix enforce the same definition
# of "uncorrupted"; these names stay as the suite's historical API.
snapshot_state = state_fingerprint


def assert_restored(before, after):
    """Field-by-field comparison so a mismatch names what leaked."""
    assert before.keys() == after.keys()
    leaks = diff_fingerprints(before, after)
    assert not leaks, f"state leaked across rollback: {leaks}"
