"""Hypervisor-specific quirk faults (§6.2 of the paper).

Two failure modes are not generic "the operation failed" faults but
behavioural quirks of specific deployments:

* Firecracker's per-thread seccomp filters kill the process on an
  injected syscall outside the allowlist (modelled as the
  ``seccomp.injected`` site with the ``seccomp_kill`` flavor);
* a host kernel without the ioregionfd patch (or Cloud Hypervisor's
  lack of the API) makes ``KVM_CHECK_EXTENSION`` deny ioregionfd
  (modelled as the non-raising ``quirk.ioregionfd_missing`` flag).
"""

import pytest

from repro.errors import SeccompViolationError
from repro.sim.faults import FaultPlan, FaultSpec, PERMANENT

from tests.chaos.conftest import (
    assert_restored,
    launch_flavor,
    snapshot_state,
)


def test_firecracker_seccomp_kill_rolls_back_cleanly():
    """A seccomp kill mid-pipeline is just another fault to unwind."""
    tb, hv, attach_kwargs = launch_flavor("firecracker")
    vmsh = tb.vmsh()
    before = snapshot_state(tb, hv, vmsh)
    plan = FaultPlan(
        [
            FaultSpec(
                site="seccomp.injected",
                occurrence=3,          # let the first injected calls through
                kind=PERMANENT,
                flavor="seccomp_kill",
            )
        ],
        label="fc-seccomp-kill",
    )
    with tb.host.faults.plan(plan):
        with pytest.raises(SeccompViolationError):
            vmsh.attach(hv.pid, **attach_kwargs)
    assert_restored(before, snapshot_state(tb, hv, vmsh))
    assert hv.guest.panicked is None
    session = vmsh.attach(hv.pid, **attach_kwargs)
    assert session.console.run_command("echo ok").output == "ok"


def test_seccomp_kill_is_not_retried():
    """Retries only help transient faults — a filter never heals."""
    tb, hv, attach_kwargs = launch_flavor("firecracker", trace=True)
    vmsh = tb.vmsh()
    plan = FaultPlan(
        [FaultSpec(site="seccomp.injected", kind=PERMANENT, flavor="seccomp_kill")],
        label="fc-seccomp-kill",
    )
    with tb.host.faults.plan(plan):
        with pytest.raises(SeccompViolationError):
            vmsh.attach(hv.pid, retries=5, **attach_kwargs)
    assert tb.tracer.find("vmsh", "attach_retry") == []


def test_ioregionfd_missing_quirk_falls_back_to_wrap_syscall():
    """The patched-kernel probe is honest: when the quirk flag says the
    host lacks ioregionfd, attach degrades to the ptrace wrapper."""
    tb, hv, attach_kwargs = launch_flavor("qemu", ioregionfd=True)
    vmsh = tb.vmsh()
    plan = FaultPlan(
        [FaultSpec(site="quirk.ioregionfd_missing", kind=PERMANENT)],
        label="no-ioregionfd",
    )
    with tb.host.faults.plan(plan):
        session = vmsh.attach(hv.pid, **attach_kwargs)
        assert session.report.mmio_mode == "wrap_syscall"
        assert session._ptrace is not None and session._ptrace.attached
        assert session.console.run_command("echo degraded").output == "degraded"
        assert [f.site for f in tb.host.faults.fired] == [
            "quirk.ioregionfd_missing"
        ]
    session.detach()
    # Without the quirk the same testbed negotiates ioregionfd again.
    second = tb.vmsh().attach(hv.pid)
    assert second.report.mmio_mode == "ioregionfd"
