"""Same master seed => same fault schedule, same trace, same outcome.

The whole point of deterministic chaos: a failure seen once is a
failure reproducible forever.  Two independently-built testbeds given
the same seed-derived plan must produce *identical* fired-fault logs
and identical trace event streams (the virtual clock, per-host pid/tid
counters and seeded RNG streams make the simulation replayable).
"""

from repro.sim.faults import FaultPlan

from tests.chaos.conftest import MASTER_SEED, launch_flavor


def _run_once(flavor):
    tb, hv, attach_kwargs = launch_flavor(flavor, trace=True)
    vmsh = tb.vmsh()
    plan = FaultPlan.derive(f"chaos:{flavor}", master_seed=MASTER_SEED)
    tb.host.faults.arm(plan)
    try:
        vmsh.attach(hv.pid, retries=3, **attach_kwargs)
        outcome = "attached"
    except Exception as err:  # noqa: BLE001 - outcome identity is the assertion
        outcome = f"{type(err).__name__}:{err}"
    finally:
        fired = list(tb.host.faults.fired)
        tb.host.faults.disarm()
    return plan, outcome, fired, list(tb.tracer.events)


def test_identical_seed_identical_run():
    plan_a, outcome_a, fired_a, events_a = _run_once("qemu")
    plan_b, outcome_b, fired_b, events_b = _run_once("qemu")
    assert plan_a.specs == plan_b.specs
    assert outcome_a == outcome_b
    assert fired_a == fired_b
    # Event is a frozen dataclass: full-stream equality is bit-identity
    # of what happened and when (virtual time) it happened.
    assert events_a == events_b


def test_identical_seed_identical_run_across_flavors():
    for flavor in ("firecracker", "cloud_hypervisor"):
        _, outcome_a, fired_a, events_a = _run_once(flavor)
        _, outcome_b, fired_b, events_b = _run_once(flavor)
        assert outcome_a == outcome_b, flavor
        assert fired_a == fired_b, flavor
        assert events_a == events_b, flavor


def test_different_labels_draw_different_schedules():
    plans = {
        flavor: FaultPlan.derive(f"chaos:{flavor}", master_seed=MASTER_SEED)
        for flavor in ("qemu", "kvmtool", "crosvm")
    }
    specs = [tuple(p.specs) for p in plans.values()]
    assert len(set(specs)) == len(specs)
