"""Observability exports are part of the determinism contract.

PR 4's fleet suite pins the rendered tracer stream; this one pins the
PR 5 exports built on top of it: the JSON metrics snapshot and the
Perfetto span trace of the canonical observed fleet run must be
byte-identical across two same-seed runs — span IDs, label order,
histogram sample keys and all — and must diverge across seeds (the
interleaving differs *and* the seed gauge differs).
"""

import json

from repro.bench.fleet_obs import run_observed_fleet
from repro.obs.export import validate_trace_events

from tests.chaos.conftest import MASTER_SEED


def _exports(seed):
    tb = run_observed_fleet(seed)
    return tb.obs.metrics_json(), tb.obs.perfetto_json()


def test_obs_exports_same_seed_byte_identical():
    metrics_a, trace_a = _exports(MASTER_SEED)
    metrics_b, trace_b = _exports(MASTER_SEED)
    assert metrics_a == metrics_b
    assert trace_a == trace_b


def test_obs_exports_different_seed_diverge():
    metrics_a, trace_a = _exports(MASTER_SEED)
    metrics_b, trace_b = _exports(MASTER_SEED + 1)
    assert metrics_a != metrics_b
    assert trace_a != trace_b


def test_fleet_perfetto_trace_is_valid_and_nested():
    """The 8-VM trace loads: schema-clean, attach steps under the root."""
    tb = run_observed_fleet(MASTER_SEED)
    trace = json.loads(tb.obs.perfetto_json())
    assert validate_trace_events(trace) == []

    recorder = tb.obs.spans
    steps = recorder.find("attach.step")
    assert len(steps) >= 11          # at least one full pipeline's steps
    roots = {s.sid for s in recorder.find("attach")}
    assert roots
    # Every step span is parented (directly) under an attach root.
    assert all(s.parent_sid in roots for s in steps)
    # The rolled-back attempt nests its rollback under the same root.
    rollbacks = recorder.find("txn.rollback")
    assert len(rollbacks) == 1 and rollbacks[0].parent_sid in roots


def test_fleet_metrics_snapshot_reflects_the_run():
    tb = run_observed_fleet(MASTER_SEED)
    snap = tb.obs.metrics_snapshot()

    def total(name):
        return sum(
            v["value"] for k, v in snap.items()
            if k.split("{")[0] == name and v["kind"] == "counter"
        )

    assert total("txn.commits") == 4          # neighbour + 2 + monitor
    assert total("txn.rollbacks") == 1
    assert total("faults.injected") == 1
    assert total("kvm.vmexits") > 0
    assert total("sched.events_dispatched") > 0
    assert total("vring.used_publishes") > 0
