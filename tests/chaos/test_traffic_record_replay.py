"""Record/replay of the end-to-end traffic scenario.

The traffic plane layers the net fabric, guest NIC servers and three
chaos legs on top of the fleet — the recordable surface is the same:
a pinned-seed run records once, re-records byte-identically, replays
byte-for-byte, and a perturbed recording pins the correct first
divergence.
"""

import copy

import pytest

from repro.replay.recording import Recording, RunRecorder
from repro.replay.replayer import Replayer
from repro.replay.scenarios import run_scenario

from .conftest import MASTER_SEED

TRAFFIC_PARAMS = {"seed": MASTER_SEED, "requests": 96}


def _record_traffic():
    recorder = RunRecorder("traffic", TRAFFIC_PARAMS)
    result = run_scenario("traffic", TRAFFIC_PARAMS,
                          on_testbed=recorder.attach)
    return recorder.finish(outcome=result.outcome), result


@pytest.fixture(scope="module")
def recorded():
    return _record_traffic()


def test_traffic_run_records_and_serves(recorded):
    recording, result = recorded
    assert recording.scenario == "traffic"
    assert recording.master_seed == MASTER_SEED
    assert recording.events, "a traced traffic run emits events"
    assert result.extra["completed"] == result.extra["requests"] == 96
    assert result.extra["servers"] >= 8
    # the chaos legs ran: one clean attach/detach and one rollback
    assert "attached" in result.extra["attach_log"]
    assert any(e.startswith("rolled-back:")
               for e in result.extra["attach_log"])


def test_traffic_recording_twice_is_byte_identical(recorded):
    recording, _ = recorded
    again, again_result = _record_traffic()
    assert again.events == recording.events
    assert again.clock_end_ns == recording.clock_end_ns
    assert again.to_json() == recording.to_json()


def test_traffic_replay_matches_byte_for_byte(recorded, tmp_path):
    recording, _ = recorded
    loaded = Recording.load(recording.save(tmp_path / "traffic.json"))
    report = Replayer().replay(loaded)
    assert report.matched, report.divergence and report.divergence.describe()
    assert report.events_checked == len(recording.events)
    assert report.outcome == "ok"


def test_perturbed_traffic_recording_pins_first_divergence(recorded):
    recording, _ = recorded
    index = len(recording.events) // 2
    bad = copy.deepcopy(recording)
    bad.events[index] = [bad.events[index][0], "tampered", "tampered", None]
    report = Replayer().replay(bad)
    assert not report.matched
    assert report.divergence.kind == "mismatch"
    assert report.divergence.index == index
    assert report.divergence.live == recording.events[index]
