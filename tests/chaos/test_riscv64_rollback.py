"""Pinned-seed riscv64 chaos case (PR 9 satellite).

The full flavor x step x kind grid already covers ``qemu_riscv64``
through the chaos matrix; this file pins one deep case forever: a
*permanent* fault mid-pipeline on a riscv64 guest — after the attach
has written real Sv39 PTEs into guest RAM — must roll back to a
bit-identical pre-attach state, including the satp-addressed root
table page, and the whole run must be byte-for-byte reproducible from
its seed (trace and fingerprints alike).
"""

import pytest

from repro.arch import RISCV64, RISCV64_SV48, SATP_MODE_SV39
from repro.errors import PermanentFaultError
from repro.replay.scenarios import AttachCase, run_attach_case
from repro.sim.faults import FaultPlan, FaultSpec, PERMANENT
from repro.testbed import Testbed

from tests.chaos.conftest import assert_restored, launch_flavor, snapshot_state

#: the pinned master seed for this case ("RISC" in ASCII) — never bump
#: it: the point is that this exact schedule stays green forever.
PINNED_SEED = 0x52495343

#: a step that fires after the loader has already built page tables in
#: guest RAM, so the rollback has real Sv39 PTE bytes to undo.
MID_PIPELINE_STEP = "attach.load_library"


def test_riscv64_permanent_fault_rolls_back_bit_identical():
    tb, hv, attach_kwargs = launch_flavor("qemu_riscv64")
    vmsh = tb.vmsh()
    before = snapshot_state(tb, hv, vmsh)
    # The fingerprint's root-table page really is satp-addressed.
    satp = hv.vm.vcpus[0].sregs["satp"]
    assert satp >> 60 == SATP_MODE_SV39
    assert before["pt_root"] == hv.vm.guest_memory().read(
        RISCV64.pt_root_paddr(satp), 4096
    )

    plan = FaultPlan(
        [FaultSpec(site=MID_PIPELINE_STEP, kind=PERMANENT)],
        label="riscv64:pinned",
        master_seed=PINNED_SEED,
    )
    with tb.host.faults.plan(plan):
        with pytest.raises(PermanentFaultError) as exc:
            vmsh.attach(hv.pid, retries=2, **attach_kwargs)
    assert exc.value.site == MID_PIPELINE_STEP

    assert_restored(before, snapshot_state(tb, hv, vmsh))
    assert hv.guest.panicked is None
    # The rolled-back guest still serves a clean attach afterwards.
    session = vmsh.attach(hv.pid, **attach_kwargs)
    assert session.mmio_mode == "wrap_syscall"
    assert session.console.run_command("echo back").output == "back"


def test_riscv64_sv48_permanent_fault_rolls_back_bit_identical():
    """Same pinned case on the four-level Sv48 variant."""
    tb = Testbed(arch="riscv64_sv48")
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    before = snapshot_state(tb, hv, vmsh)
    assert before["pt_root"] == hv.vm.guest_memory().read(
        RISCV64_SV48.pt_root_paddr(hv.guest.cr3), 4096
    )
    plan = FaultPlan(
        [FaultSpec(site=MID_PIPELINE_STEP, kind=PERMANENT)],
        label="riscv64_sv48:pinned",
        master_seed=PINNED_SEED,
    )
    with tb.host.faults.plan(plan):
        with pytest.raises(PermanentFaultError):
            vmsh.attach(hv.pid, retries=2)
    assert_restored(before, snapshot_state(tb, hv, vmsh))
    assert tb.vmsh().attach(hv.pid).console.run_command("echo ok").output == "ok"


#: the same case as the fuzzer would draw it — replayable from JSON.
PINNED_CASE = AttachCase(
    seed=PINNED_SEED,
    flavor="qemu_riscv64",
    specs=(
        {"site": MID_PIPELINE_STEP, "kind": PERMANENT},
    ),
    retries=1,
)


def _run_pinned():
    result = run_attach_case(PINNED_CASE)
    tb = result.testbed
    trace = "\n".join(str(event) for event in tb.tracer)
    return result, trace


def test_riscv64_pinned_case_is_deterministic():
    """Two executions of the pinned case are byte-identical: same
    outcome, no invariant violations, and the very same trace."""
    first, trace_a = _run_pinned()
    second, trace_b = _run_pinned()
    assert first.outcome == second.outcome == "failed:PermanentFaultError"
    assert first.violations == second.violations == []
    assert first.coverage == second.coverage
    assert trace_a == trace_b
    assert trace_a  # non-empty: the run actually traced the pipeline


def test_riscv64_pinned_case_roundtrips_as_json():
    """The corpus serialisation carries the riscv64 case unchanged."""
    assert AttachCase.from_json(PINNED_CASE.to_json()) == PINNED_CASE
