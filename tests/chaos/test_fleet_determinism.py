"""Fleet-scale determinism: same seed => bit-identical concurrent runs.

The single-VM determinism suite pins replayability of one attach; this
one pins the *scheduler's* contribution.  A run with eight VMs, two
interleaved attach pipelines, cooperative block I/O, and a
fault-injected attach rolling back mid-fleet has thousands of
same-instant event ties — every one resolved by the seed-derived
tie-break stream, never by dict order or wall clock.  Two runs from the
same master seed must therefore produce byte-identical trace streams;
a different seed explores a different (still reproducible) interleaving.
"""

from repro.errors import PermanentFaultError
from repro.sim.faults import PERMANENT, FaultPlan, FaultSpec
from repro.testbed import Testbed
from repro.units import SECTOR_SIZE

from tests.chaos.conftest import MASTER_SEED

FLEET_SIZE = 8


def _blk_io(disk, fill, sectors=6):
    payload = bytes([fill]) * SECTOR_SIZE
    yield from disk.write_sectors_queued_task(
        [(i, payload) for i in range(sectors)]
    )
    data = yield from disk.read_sectors_queued_task(
        [(i, 1) for i in range(sectors)]
    )
    return b"".join(data)


def _run_fleet(seed):
    """One full fleet scenario; returns (outcomes, trace lines).

    Phase 1 — two attach pipelines interleave while an already-attached
    neighbour's queued block I/O flows through its service task.
    Phase 2 — a third attach hits a permanent irqfd fault and rolls
    back while the neighbour's I/O keeps flowing.
    """
    tb = Testbed(trace=True, seed=seed)
    hvs = [tb.launch_qemu() for _ in range(FLEET_SIZE)]
    outcomes = []

    # VM 0 is the long-lived neighbour: attached up front, queues
    # drained by a scheduler task from here on.
    neighbour = tb.vmsh().attach(hvs[0].pid)
    neighbour.start_service(tb.scheduler)
    disk = hvs[0].guest.vmsh_block

    # -- phase 1: two interleaved attaches + neighbour I/O ------------------
    io_task = tb.scheduler.spawn(_blk_io(disk, 0xA1), label="io-phase1")
    attach_tasks = [
        tb.scheduler.spawn(tb.vmsh().attach_task(hvs[n].pid), label=f"attach-{n}")
        for n in (1, 2)
    ]
    io_data, session_1, session_2 = tb.scheduler.run(io_task, *attach_tasks)
    outcomes.append(("phase1-io", io_data == b"\xa1" * (6 * SECTOR_SIZE)))
    outcomes.append(("phase1-attached",
                     [s.report.hypervisor_pid for s in (session_1, session_2)]))

    # -- phase 2: fault-injected attach rolls back, I/O keeps flowing -------
    plan = FaultPlan(
        [FaultSpec("ioctl.KVM_IRQFD", occurrence=1, kind=PERMANENT)],
        label="fleet-phase2",
    )
    tb.host.faults.arm(plan)
    io2_task = tb.scheduler.spawn(_blk_io(disk, 0xB2), label="io-phase2")
    doomed = tb.scheduler.spawn(
        tb.vmsh().attach_task(hvs[3].pid), label="attach-doomed"
    )
    tb.scheduler.run_until_idle()
    fired = [(f.site, f.kind, f.occurrence) for f in tb.host.faults.fired]
    tb.host.faults.disarm()
    outcomes.append(("phase2-io", io2_task.result() == b"\xb2" * (6 * SECTOR_SIZE)))
    outcomes.append(("phase2-error", type(doomed.error).__name__))
    outcomes.append(("phase2-fired", fired))
    # Rollback left the doomed VM untraced and its vCPUs running.
    outcomes.append(("phase2-rolled-back", hvs[3].process.tracer is None))

    for session in (session_1, session_2, neighbour):
        session.detach()
    outcomes.append(("events-run", tb.scheduler.events_run))
    return outcomes, [str(event) for event in tb.tracer.events]


def test_fleet_same_seed_bit_identical():
    outcomes_a, trace_a = _run_fleet(MASTER_SEED)
    outcomes_b, trace_b = _run_fleet(MASTER_SEED)
    assert outcomes_a == outcomes_b
    # Byte-identical event streams: the rendered trace is the
    # canonical record of what happened and when.
    assert "\n".join(trace_a) == "\n".join(trace_b)


def test_fleet_scenario_outcomes():
    """The scenario itself behaves, independent of replay identity."""
    outcomes, trace = _run_fleet(MASTER_SEED)
    by_key = dict(outcomes)
    assert by_key["phase1-io"] is True
    assert len(by_key["phase1-attached"]) == 2
    assert by_key["phase2-io"] is True
    assert by_key["phase2-error"] == "PermanentFaultError"
    assert by_key["phase2-fired"] and by_key["phase2-fired"][0][0] == "ioctl.KVM_IRQFD"
    assert by_key["phase2-rolled-back"] is True
    assert by_key["events-run"] > 0
    assert trace  # the run is actually traced


def test_fleet_different_seed_different_interleaving():
    _, trace_a = _run_fleet(MASTER_SEED)
    _, trace_b = _run_fleet(MASTER_SEED + 1)
    # Same workload, different tie-breaks: the streams should diverge
    # somewhere (identical streams would mean the seed is ignored).
    assert trace_a != trace_b
