"""Fuzzer end-to-end: find the seeded bug, shrink it, replay it.

The repo carries a deliberately planted invariant violation behind
the ``plant_bug`` flag: a failed attach with the
``quirk.ioregionfd_missing`` downgrade armed *and* a fault at
``attach.install_dispatch`` leaks one fd in the VMSH process.  The
pinned-seed smoke run must rediscover it from scratch, shrink the
finding to the minimal two-spec plan, and the saved corpus entry must
replay-fail deterministically — including from a fresh process.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.replay.corpus import CorpusEntry, load_entries, replay_entry
from repro.replay.fuzzer import AttachFuzzer
from repro.replay.scenarios import AttachCase, run_attach_case
from repro.replay.shrinker import shrink

from .conftest import MASTER_SEED

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_CORPUS = REPO_ROOT / "tests" / "corpus"

#: the pinned smoke budget: the planted bug surfaces at case 55 of the
#: pinned seed's deterministic case sequence (CI runs 200 for slack).
SMOKE_CASES = 80


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    corpus_dir = tmp_path_factory.mktemp("corpus")
    fuzzer = AttachFuzzer(
        master_seed=MASTER_SEED, corpus_dir=str(corpus_dir), plant_bug=True
    )
    return fuzzer.run(SMOKE_CASES), corpus_dir


def test_fuzzer_rediscovers_the_planted_bug(smoke_report):
    report, _corpus = smoke_report
    assert report.found_planted, (
        f"{report.cases_run} pinned-seed cases never hit the planted "
        f"violation"
    )
    planted = [f for f in report.failures if f.requires_plant]
    assert all(f.deterministic for f in planted)
    assert all(f.violations == ["state-leak:vmsh_fds"] for f in planted)


def test_planted_finding_shrinks_to_two_specs(smoke_report):
    report, _corpus = smoke_report
    failure = next(f for f in report.failures if f.requires_plant)
    assert len(failure.shrunk.specs) <= 2, failure.describe()
    sites = {spec["site"] for spec in failure.shrunk.specs}
    assert sites == {"attach.install_dispatch", "quirk.ioregionfd_missing"}
    assert failure.shrunk.virtio_abuse is None
    assert failure.shrunk.retries == 0


def test_fuzzer_finds_no_organic_violations(smoke_report):
    """Every violation in the smoke run needs the planted flag: the
    honest pipeline holds its invariants under the fuzzer."""
    report, _corpus = smoke_report
    organic = [f for f in report.failures if not f.requires_plant]
    assert organic == [], [f.describe() for f in organic]


def test_fuzzer_accumulates_coverage(smoke_report):
    report, _corpus = smoke_report
    assert len(report.coverage) > 40
    assert report.interesting > 5
    # the signal spans pipeline steps, rollback paths and outcomes
    assert any(k.startswith("step:") for k in report.coverage)
    assert any(k.startswith("rollback:") for k in report.coverage)
    assert any(k.startswith("outcome:failed") for k in report.coverage)


def test_saved_corpus_entry_replays_in_process(smoke_report):
    report, corpus_dir = smoke_report
    entries = load_entries(corpus_dir)
    assert entries, "the planted finding was saved"
    for _path, entry in entries:
        verdict = replay_entry(entry)
        assert verdict["reproduced"], verdict


def test_fuzz_case_sequence_is_seed_deterministic():
    """Same master seed — same generated cases, across runs."""
    a = AttachFuzzer(master_seed=MASTER_SEED)
    b = AttachFuzzer(master_seed=MASTER_SEED)
    from repro.sim import rng as simrng

    cases_a = [a.generate(simrng.stream(f"fuzz:case:{i}", MASTER_SEED))
               for i in range(10)]
    cases_b = [b.generate(simrng.stream(f"fuzz:case:{i}", MASTER_SEED))
               for i in range(10)]
    assert cases_a == cases_b


def test_multi_fault_failure_shrinks_to_minimal_plan():
    """Satellite: a 5-knob failing case (two needed specs, two noise
    specs, an abuse, retries) shrinks to exactly the two specs the
    violation requires."""
    noisy = AttachCase(
        seed=0xC0FFEE,
        flavor="qemu",
        retries=2,
        specs=(
            {"site": "ptrace.attach", "kind": "transient", "occurrence": 1},
            {"site": "attach.install_dispatch", "kind": "permanent"},
            {"site": "quirk.ioregionfd_missing", "kind": "permanent"},
            {"site": "physmem.read", "kind": "transient", "occurrence": 9},
        ),
        virtio_abuse="zero_len",
    )
    wanted = ["state-leak:vmsh_fds"]
    result = run_attach_case(noisy, plant_bug=True)
    assert result.violations == wanted, "the noisy case fails to start with"

    def check(candidate):
        rerun = run_attach_case(candidate, plant_bug=True)
        return all(v in rerun.violations for v in wanted)

    shrunk = shrink(noisy, check)
    assert {spec["site"] for spec in shrunk.specs} == {
        "attach.install_dispatch",
        "quirk.ioregionfd_missing",
    }
    assert shrunk.virtio_abuse is None
    assert shrunk.retries == 0
    # shrinking is deterministic: same input, same minimal case
    assert shrink(noisy, check) == shrunk


def test_committed_corpus_replays_across_processes():
    """The corpus entries committed under tests/corpus must
    replay-fail deterministically from a *fresh* interpreter — the
    exact check CI runs."""
    entries = load_entries(COMMITTED_CORPUS)
    assert entries, "tests/corpus carries the planted-bug entry"
    for _path, entry in entries:
        assert replay_entry(entry)["reproduced"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", "--replay",
         str(COMMITTED_CORPUS)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reproduced" in proc.stdout


def test_committed_corpus_entry_is_the_shrunk_planted_bug():
    entries = load_entries(COMMITTED_CORPUS)
    planted = [e for _p, e in entries if e.requires_plant]
    assert planted, "the committed corpus holds the planted-bug entry"
    for entry in planted:
        assert len(entry.case.specs) <= 2
        assert entry.violations == ["state-leak:vmsh_fds"]
