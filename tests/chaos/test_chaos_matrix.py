"""The chaos matrix: every hypervisor x every attach step x fault kind.

For each of the five hypervisor flavors (Table 1) a fault is injected
at each of the eleven pipeline step boundaries, in both kinds:

* *transient* — ``attach(retries=...)`` must roll back the failed
  attempt, back off on the simulated clock, and succeed on retry;
* *permanent* — the attach must fail with the injected error, and the
  rollback must leave hypervisor, guest and VMSH process bit-identical
  to their pre-attach state (checked field by field), after which a
  clean attach must still succeed.

In every case the guest must keep running (no panic) and the overlay
console must serve block IO through vmsh-blk afterwards.
"""

import pytest

from repro.core.vmsh import ATTACH_STEPS
from repro.errors import PermanentFaultError
from repro.sim.faults import FaultPlan, FaultSpec, PERMANENT, TRANSIENT

from tests.chaos.conftest import (
    FLAVORS,
    assert_restored,
    launch_flavor,
    snapshot_state,
)

CASES = [
    (flavor, step, kind)
    for flavor in FLAVORS
    for step in ATTACH_STEPS
    for kind in (TRANSIENT, PERMANENT)
]


def _prove_guest_serves_io(session, hv):
    """The overlay root is served via vmsh-blk: reading a file is IO proof."""
    out = session.console.run_command("cat /etc/os-release").output
    assert out.startswith('NAME="vmsh-overlay"')
    assert hv.guest.panicked is None


@pytest.mark.parametrize(
    "flavor,step,kind", CASES, ids=[f"{f}-{s}-{k}" for f, s, k in CASES]
)
def test_fault_at_every_step(flavor, step, kind):
    tb, hv, attach_kwargs = launch_flavor(flavor)
    vmsh = tb.vmsh()
    before = snapshot_state(tb, hv, vmsh)
    plan = FaultPlan(
        [FaultSpec(site=f"attach.{step}", kind=kind)],
        label=f"{flavor}:{step}:{kind}",
    )

    if kind == TRANSIENT:
        with tb.host.faults.plan(plan):
            session = vmsh.attach(hv.pid, retries=2, **attach_kwargs)
            fired = list(tb.host.faults.fired)
        assert [(f.site, f.kind) for f in fired] == [(f"attach.{step}", TRANSIENT)]
        _prove_guest_serves_io(session, hv)
        return

    # Permanent: no amount of retrying helps; the attach fails cleanly...
    with tb.host.faults.plan(plan):
        with pytest.raises(PermanentFaultError) as exc:
            vmsh.attach(hv.pid, retries=2, **attach_kwargs)
    assert exc.value.site == f"attach.{step}"
    # ...the rollback restored every observable bit of pre-attach state...
    assert_restored(before, snapshot_state(tb, hv, vmsh))
    assert hv.guest.panicked is None
    # ...and the same Vmsh process can attach cleanly afterwards.
    session = vmsh.attach(hv.pid, **attach_kwargs)
    _prove_guest_serves_io(session, hv)
