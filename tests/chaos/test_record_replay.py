"""Record/replay round-trip property (PR 7 acceptance).

An 8-VM fleet run — including a mid-fleet rollback (phase 2's doomed
attach) and a snapshot/restore spliced mid-attach — records to a
trace file, and replaying that file regenerates the identical event
stream byte for byte.  A perturbed recording must pin the *correct*
first divergence, and ``until`` must drop into the span/metrics dump.
"""

import copy

import pytest

from repro.replay.recording import Recording, RunRecorder
from repro.replay.replayer import Replayer
from repro.replay.scenarios import run_scenario

from .conftest import MASTER_SEED

FLEET_PARAMS = {
    "seed": MASTER_SEED,
    "fleet_size": 8,
    "snapshot_mid_attach": True,
}


def _record_fleet():
    recorder = RunRecorder("fleet", FLEET_PARAMS)
    result = run_scenario("fleet", FLEET_PARAMS, on_testbed=recorder.attach)
    return recorder.finish(outcome=result.outcome)


@pytest.fixture(scope="module")
def recording():
    return _record_fleet()


def test_fleet_run_records_all_determinants(recording):
    assert recording.scenario == "fleet"
    assert recording.master_seed == MASTER_SEED
    assert recording.events, "a traced fleet run emits events"
    assert recording.fault_plan == [], "plan disarmed by run end"
    assert recording.clock_end_ns > 0
    assert recording.sched_turns > 0
    assert recording.cost_params["ptrace_stop_ns"] > 0
    # the spliced snapshot/restore and the rollback both left a mark
    names = {event[2] for event in recording.events}
    assert "rollback" in names or any("rollback" in n for n in names)


def test_recording_twice_is_byte_identical(recording):
    again = _record_fleet()
    assert again.events == recording.events
    assert again.clock_end_ns == recording.clock_end_ns
    assert again.sched_turns == recording.sched_turns
    assert again.to_json() == recording.to_json()


def test_replay_matches_byte_for_byte(recording, tmp_path):
    loaded = Recording.load(recording.save(tmp_path / "run.json"))
    report = Replayer().replay(loaded)
    assert report.matched, report.divergence and report.divergence.describe()
    assert report.events_checked == len(recording.events)
    assert report.outcome == "ok"


@pytest.mark.parametrize("index_frac", [0.25, 0.5, 0.9])
def test_perturbed_recording_pins_first_divergence(recording, index_frac):
    index = int(len(recording.events) * index_frac)
    bad = copy.deepcopy(recording)
    bad.events[index] = [bad.events[index][0], "tampered", "tampered", None]
    report = Replayer().replay(bad)
    assert not report.matched
    assert report.divergence.kind == "mismatch"
    assert report.divergence.index == index
    assert report.divergence.live == recording.events[index]
    assert report.divergence.time_ns >= 0
    assert report.divergence.sched_turn >= 0


def test_truncated_recording_reports_extra_events(recording):
    bad = copy.deepcopy(recording)
    bad.events = bad.events[:100]
    report = Replayer().replay(bad)
    assert not report.matched
    assert report.divergence.kind == "extra"
    assert report.divergence.index == 100


def test_padded_recording_reports_missing_events(recording):
    bad = copy.deepcopy(recording)
    bad.events = bad.events + [[bad.clock_end_ns, "ghost", "ghost", None]]
    report = Replayer().replay(bad)
    assert not report.matched
    assert report.divergence.kind == "missing"
    assert report.divergence.index == len(recording.events)


def test_until_stops_into_state_dump(recording):
    report = Replayer().replay(recording, until=100)
    assert report.stopped_at == 100
    dump = report.dump
    assert dump["stopped_at"] == 100
    assert dump["time_ns"] > 0
    assert dump["recent_events"], "dump carries the recent event window"
    assert isinstance(dump["metrics"], dict) and dump["metrics"]
    # replay up to an event inside phase 1 stops with attaches open
    assert any("attach" in span for span in dump["open_spans"])


def test_divergence_context_names_open_attach_steps(recording):
    # find an event emitted while an attach.step span is open: the
    # txn step markers themselves qualify
    index = next(
        i for i, event in enumerate(recording.events)
        if event[1] == "txn" and event[2] == "step" and i > 10
    )
    bad = copy.deepcopy(recording)
    bad.events[index] = [bad.events[index][0], "txn", "tampered", None]
    report = Replayer().replay(bad)
    assert report.divergence.index == index
    assert report.divergence.open_steps, (
        "a txn step divergence happens inside an open attach.step span"
    )
