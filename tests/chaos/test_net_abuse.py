"""Hostile-driver abuse and fault injection against vmsh-net.

The net device rides the same shared virtio core as blk/console, so it
inherits the same contract the blk abuses pin: scribbled descriptors
must be rejected with :class:`VirtioError` and the queue pair must
keep moving real frames afterwards.  These are the pinned-seed smoke
cases for the ``net_*`` members of the fuzzer's abuse pool, plus the
``virtio.net_{rx,tx}_ring`` fault sites the data plane consults.
"""

import pytest

from repro.errors import PermanentFaultError, TransientFaultError
from repro.replay.fuzzer import AttachFuzzer
from repro.replay.scenarios import VIRTIO_ABUSES, AttachCase, run_attach_case
from repro.sim import rng as simrng
from repro.sim.faults import (
    PERMANENT,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
    known_fault_sites,
    validate_fault_site,
)
from repro.testbed import Testbed
from repro.virtio.net import make_frame

from .conftest import MASTER_SEED

NET_ABUSES = ("net_tx_desc_loop", "net_tx_bad_gpa", "net_rx_bad_dir")

#: one multi-pair row and the single-pair/no-EVENT_IDX row — the two
#: device shapes the abuse helpers must survive on.
FLAVOR_ROWS = ("qemu", "kvmtool")


def test_net_abuses_are_in_the_fuzzer_pool():
    for kind in NET_ABUSES:
        assert kind in VIRTIO_ABUSES


@pytest.mark.parametrize("kind", NET_ABUSES)
@pytest.mark.parametrize("flavor", FLAVOR_ROWS)
def test_net_abuse_rejected_and_pair_stays_live(kind, flavor):
    case = AttachCase(seed=MASTER_SEED, flavor=flavor, virtio_abuse=kind)
    result = run_attach_case(case)
    assert result.outcome == "attached"
    assert result.violations == []
    # the data plane leaves path-shaped coverage behind
    assert any(k.startswith("ctr:vring.") for k in result.coverage)


def test_pinned_seed_sequence_draws_a_net_abuse():
    """The fuzz smoke budget (80 cases) must exercise the net pool:
    if reweighting ever starves the ``net_*`` kinds out of the pinned
    sequence, this canary fails before the smoke run silently loses
    the coverage."""
    fuzzer = AttachFuzzer(master_seed=MASTER_SEED)
    kinds = {
        fuzzer.generate(
            simrng.stream(f"fuzz:case:{i}", MASTER_SEED)
        ).virtio_abuse
        for i in range(80)
    }
    assert kinds & set(NET_ABUSES), kinds


def test_virtio_fault_sites_are_registered():
    sites = known_fault_sites()
    assert "virtio.net_rx_ring" in sites
    assert "virtio.net_tx_ring" in sites
    validate_fault_site("virtio.net_tx_ring")
    with pytest.raises(Exception):
        validate_fault_site("virtio.net_bogus_ring")


def test_tx_ring_fault_fires_and_pair_recovers():
    tb = Testbed(seed=MASTER_SEED)
    hv = tb.launch_qemu(nic=True)
    nic = hv.guest.net_devices["eth0"]
    device = hv.nics["net0"]
    tb.host.faults.arm(
        FaultPlan(
            [FaultSpec("virtio.net_tx_ring", kind=PERMANENT)],
            label="chaos:net-tx",
        )
    )
    with pytest.raises(PermanentFaultError):
        nic.send(make_frame(b"\xff" * 6, nic.mac, b"wedged"))
    assert device.frames_tx == 0
    tb.host.faults.disarm()
    # Recovery from a faulted kick: the frame is still sitting in the
    # avail ring, so re-kick the device and harvest the stale
    # completion before the engine runs again.
    nic.transport.notify(1)
    assert device.frames_tx == 1
    nic.tx_rings[0].collect_used()
    nic.send(make_frame(b"\xff" * 6, nic.mac, b"after"))
    assert device.frames_tx == 2


def test_rx_ring_fault_fires_and_pair_recovers():
    tb = Testbed(seed=MASTER_SEED)
    hv = tb.launch_qemu(nic=True)
    nic = hv.guest.net_devices["eth0"]
    device = hv.nics["net0"]
    received = []
    nic.on_receive(lambda frame, pair: received.append(frame))
    peer = b"\x02" * 6
    tb.host.faults.arm(
        FaultPlan(
            [FaultSpec("virtio.net_rx_ring", kind=TRANSIENT)],
            label="chaos:net-rx",
        )
    )
    with pytest.raises(TransientFaultError):
        device.deliver(make_frame(device.mac, peer, b"dropped"))
    tb.host.faults.disarm()
    # Transient wedge: the queued frame flushes with the next delivery.
    device.deliver(make_frame(device.mac, peer, b"second"))
    assert [f[12:] for f in received] == [b"dropped", b"second"]
    assert device.frames_rx == 2
