"""Traffic-plane determinism: same seed, same everything.

The traffic run layers open/closed-loop load, the net fabric, chaos
legs and the fleet control plane on one scheduler — the acceptance
bar is that the *entire composite* replays bit-identically per seed,
and that the seed actually matters.
"""

from repro.usecases.traffic import run_traffic

from .conftest import MASTER_SEED


def _fingerprint(plane):
    return (plane.summary(), tuple(plane.latencies_ns))


def test_open_loop_traffic_is_seed_deterministic():
    a = _fingerprint(run_traffic(seed=MASTER_SEED, requests=96)[1])
    b = _fingerprint(run_traffic(seed=MASTER_SEED, requests=96)[1])
    assert a == b


def test_closed_loop_traffic_is_seed_deterministic():
    a = _fingerprint(
        run_traffic(seed=MASTER_SEED, requests=64, mode="closed")[1]
    )
    b = _fingerprint(
        run_traffic(seed=MASTER_SEED, requests=64, mode="closed")[1]
    )
    assert a == b


def test_different_seed_diverges():
    a = _fingerprint(
        run_traffic(seed=MASTER_SEED, requests=64, mode="closed",
                    drop_rate=0.05)[1]
    )
    b = _fingerprint(
        run_traffic(seed=MASTER_SEED + 1, requests=64, mode="closed",
                    drop_rate=0.05)[1]
    )
    assert a != b


def test_chaos_legs_do_not_break_determinism():
    """All three chaos legs plus fabric drops, twice: identical."""
    kwargs = dict(seed=MASTER_SEED, requests=80, drop_rate=0.02)
    a = _fingerprint(run_traffic(**kwargs)[1])
    b = _fingerprint(run_traffic(**kwargs)[1])
    assert a == b
    summary = a[0]
    assert summary["fabric_dropped"] > 0
    assert "attached" in summary["attach_log"]
