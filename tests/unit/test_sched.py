"""Discrete-event scheduler: ordering, timers, tasks, determinism."""

import pytest

from repro.sim.clock import Clock
from repro.sim.sched import (
    Completion,
    Scheduler,
    SchedulerError,
    Task,
    Waitable,
)


def make_sched(seed: int = 7) -> Scheduler:
    return Scheduler(Clock(), label="test", master_seed=seed)


# -- event ordering ---------------------------------------------------------------


def test_events_run_in_time_order():
    sched = make_sched()
    order = []
    sched.at(300, lambda: order.append("c"))
    sched.at(100, lambda: order.append("a"))
    sched.at(200, lambda: order.append("b"))
    sched.run_until_idle()
    assert order == ["a", "b", "c"]
    assert sched.clock.now == 300


def test_clock_advances_to_event_times():
    sched = make_sched()
    times = []
    sched.at(50, lambda: times.append(sched.now))
    sched.at(500, lambda: times.append(sched.now))
    sched.run_until_idle()
    assert times == [50, 500]


def test_past_events_clamp_to_now():
    sched = make_sched()
    sched.clock.advance(1000)
    timer = sched.at(10, lambda: None)
    assert timer.time_ns == 1000  # never schedules into the past
    fired_at = []
    sched.at(0, lambda: fired_at.append(sched.now))
    sched.run_until_idle()
    assert fired_at == [1000]
    assert sched.clock.now == 1000


def test_priority_orders_same_time_events():
    sched = make_sched()
    order = []
    sched.at(100, lambda: order.append("late"), priority=10)
    sched.at(100, lambda: order.append("early"), priority=-10)
    sched.run_until_idle()
    assert order == ["early", "late"]


def test_same_time_tiebreak_is_seed_deterministic():
    def interleaving(seed):
        sched = Scheduler(Clock(), label="tie", master_seed=seed)
        order = []
        for name in "abcdefgh":
            sched.at(100, lambda name=name: order.append(name))
        sched.run_until_idle()
        return order

    assert interleaving(1) == interleaving(1)
    assert interleaving(2) == interleaving(2)
    # Different seeds explore different interleavings of the same
    # events (with 8! possible orders a collision would be suspicious).
    assert interleaving(1) != interleaving(2)


def test_timer_cancel_elides_event():
    sched = make_sched()
    fired = []
    keep = sched.at(100, lambda: fired.append("keep"))
    drop = sched.at(100, lambda: fired.append("drop"))
    drop.cancel()
    sched.run_until_idle()
    assert fired == ["keep"]
    assert keep.fired and not drop.fired


def test_events_scheduled_during_dispatch_run():
    sched = make_sched()
    order = []

    def first():
        order.append("first")
        sched.after(10, lambda: order.append("second"))

    sched.at(5, first)
    sched.run_until_idle()
    assert order == ["first", "second"]
    assert sched.clock.now == 15


# -- run loops --------------------------------------------------------------------


def test_run_until_lands_on_deadline():
    sched = make_sched()
    fired = []
    sched.at(100, lambda: fired.append(100))
    sched.at(900, lambda: fired.append(900))
    sched.run_until(500)
    assert fired == [100]
    assert sched.clock.now == 500  # landed exactly on the deadline
    sched.run_until_idle()
    assert fired == [100, 900]


def test_run_until_idle_returns_dispatch_count():
    sched = make_sched()
    for t in (10, 20, 30):
        sched.at(t, lambda: None)
    cancelled = sched.at(40, lambda: None)
    cancelled.cancel()
    assert sched.run_until_idle() == 3
    assert sched.events_run == 3


def test_runaway_loop_is_detected():
    sched = make_sched()

    def rearm():
        sched.call_soon(rearm)

    sched.call_soon(rearm)
    with pytest.raises(SchedulerError, match="runaway"):
        sched.run_until_idle(max_events=50)


def test_nested_run_is_rejected():
    sched = make_sched()
    errors = []

    def nested():
        try:
            sched.run_until_idle()
        except SchedulerError as exc:
            errors.append(str(exc))

    sched.call_soon(nested)
    sched.run_until_idle()
    assert errors and "already running" in errors[0]


# -- periodic timers --------------------------------------------------------------


def test_periodic_timer_is_drift_free():
    sched = make_sched()
    ticks = []

    def tick():
        ticks.append(sched.now)
        sched.clock.advance(3)  # work inside the tick must not skew the period

    sched.every(100, tick)
    sched.run_until(1000)
    assert ticks == [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]


def test_periodic_timer_cancel_and_fire_count():
    sched = make_sched()
    timer = sched.every(10, lambda: None)
    sched.run_until(35)
    timer.cancel()
    sched.run_until(100)
    assert timer.fire_count == 3
    assert timer.cancelled


def test_periodic_timer_rejects_nonpositive_period():
    sched = make_sched()
    with pytest.raises(SchedulerError):
        sched.every(0, lambda: None)


# -- waitables --------------------------------------------------------------------


def test_waitable_result_before_done_raises():
    with pytest.raises(SchedulerError):
        Waitable().result()


def test_completion_set_and_callbacks():
    done = Completion()
    seen = []
    done.add_done_callback(lambda w: seen.append(w.result()))
    done.set(42)
    assert done.done and seen == [42]
    # A callback added after completion fires immediately.
    done.add_done_callback(lambda w: seen.append(w.result()))
    assert seen == [42, 42]


def test_completion_fail_reraises():
    done = Completion()
    done.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        done.result()


# -- tasks ------------------------------------------------------------------------


def test_task_yield_none_and_str_are_cooperative():
    sched = make_sched()
    order = []

    def gen(name):
        order.append(f"{name}:0")
        yield
        order.append(f"{name}:1")
        yield "named-step"
        order.append(f"{name}:2")

    sched.spawn(gen("a"), label="a")
    sched.spawn(gen("b"), label="b")
    sched.run_until_idle()
    # Both tasks complete all steps, interleaved at the same instant.
    assert sorted(order) == ["a:0", "a:1", "a:2", "b:0", "b:1", "b:2"]
    assert sched.clock.now == 0  # cooperative yields consume no time


def test_task_yield_int_sleeps():
    sched = make_sched()
    marks = []

    def gen():
        marks.append(sched.now)
        yield 100
        marks.append(sched.now)
        yield 250
        marks.append(sched.now)
        return "done"

    task = sched.spawn(gen())
    (result,) = sched.run(task)
    assert result == "done"
    assert marks == [0, 100, 350]


def test_task_yield_waitable_receives_result():
    sched = make_sched()
    gate = Completion()

    def gen():
        value = yield gate
        return value * 2

    task = sched.spawn(gen())
    sched.after(50, lambda: gate.set(21))
    (result,) = sched.run(task)
    assert result == 42


def test_task_yield_waitable_error_propagates():
    sched = make_sched()
    gate = Completion()

    def gen():
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    task = sched.spawn(gen())
    sched.after(10, lambda: gate.fail(RuntimeError("io error")))
    (result,) = sched.run(task)
    assert result == "caught io error"


def test_task_waits_on_another_task():
    sched = make_sched()

    def child():
        yield 100
        return "child-result"

    def parent(child_task):
        got = yield child_task
        return f"parent saw {got}"

    child_task = sched.spawn(child(), label="child")
    parent_task = sched.spawn(parent(child_task), label="parent")
    results = sched.run(parent_task)
    assert results == ["parent saw child-result"]


def test_task_exception_is_stored_and_reraised():
    sched = make_sched()

    def gen():
        yield 10
        raise KeyError("lost")

    task = sched.spawn(gen())
    sched.run_until_idle()
    assert task.done and isinstance(task.error, KeyError)
    with pytest.raises(KeyError):
        task.result()


def test_task_yield_bool_is_rejected():
    sched = make_sched()

    def gen():
        yield True

    sched.spawn(gen())
    with pytest.raises(SchedulerError, match="bool"):
        sched.run_until_idle()


def test_task_yield_negative_sleep_is_rejected():
    sched = make_sched()

    def gen():
        yield -5

    sched.spawn(gen())
    with pytest.raises(SchedulerError, match="negative"):
        sched.run_until_idle()


def test_task_yield_garbage_is_rejected():
    sched = make_sched()

    def gen():
        yield object()

    sched.spawn(gen())
    with pytest.raises(SchedulerError, match="unsupported"):
        sched.run_until_idle()


def test_task_cancel_closes_generator():
    sched = make_sched()
    cleaned = []

    def gen():
        try:
            yield 1000
        finally:
            cleaned.append(True)

    task = sched.spawn(gen())
    sched.run_until(10)
    task.cancel()
    assert task.done and task.cancelled and cleaned == [True]
    sched.run_until_idle()  # the orphaned wakeup is a no-op


def test_run_detects_deadlock():
    sched = make_sched()
    forever = Completion()

    def gen():
        yield forever  # nobody ever sets this

    task = sched.spawn(gen(), label="stuck-task")
    with pytest.raises(SchedulerError, match="stuck-task"):
        sched.run(task)


def test_run_returns_results_in_order():
    sched = make_sched()

    def gen(delay, value):
        yield delay
        return value

    slow = sched.spawn(gen(500, "slow"))
    fast = sched.spawn(gen(10, "fast"))
    assert sched.run(slow, fast) == ["slow", "fast"]


# -- full-stream determinism ------------------------------------------------------


def test_same_seed_same_event_stream():
    def run(seed):
        sched = Scheduler(Clock(), label="replay", master_seed=seed)
        log = []

        def worker(name, period):
            for step in range(5):
                log.append((sched.now, name, step))
                yield period

        for name in ("w1", "w2", "w3"):
            sched.spawn(worker(name, 100), label=name)
        sched.every(70, lambda: log.append((sched.now, "timer", -1)))
        sched.run_until(600)
        return log

    assert run(0xAB) == run(0xAB)
