"""Discrete-event scheduler: ordering, timers, tasks, determinism."""

import pytest

from repro.sim.clock import Clock
from repro.sim.sched import (
    Completion,
    Scheduler,
    SchedulerError,
    Task,
    Waitable,
)


def make_sched(seed: int = 7) -> Scheduler:
    return Scheduler(Clock(), label="test", master_seed=seed)


# -- event ordering ---------------------------------------------------------------


def test_events_run_in_time_order():
    sched = make_sched()
    order = []
    sched.at(300, lambda: order.append("c"))
    sched.at(100, lambda: order.append("a"))
    sched.at(200, lambda: order.append("b"))
    sched.run_until_idle()
    assert order == ["a", "b", "c"]
    assert sched.clock.now == 300


def test_clock_advances_to_event_times():
    sched = make_sched()
    times = []
    sched.at(50, lambda: times.append(sched.now))
    sched.at(500, lambda: times.append(sched.now))
    sched.run_until_idle()
    assert times == [50, 500]


def test_past_events_clamp_to_now():
    sched = make_sched()
    sched.clock.advance(1000)
    timer = sched.at(10, lambda: None)
    assert timer.time_ns == 1000  # never schedules into the past
    fired_at = []
    sched.at(0, lambda: fired_at.append(sched.now))
    sched.run_until_idle()
    assert fired_at == [1000]
    assert sched.clock.now == 1000


def test_priority_orders_same_time_events():
    sched = make_sched()
    order = []
    sched.at(100, lambda: order.append("late"), priority=10)
    sched.at(100, lambda: order.append("early"), priority=-10)
    sched.run_until_idle()
    assert order == ["early", "late"]


def test_same_time_tiebreak_is_seed_deterministic():
    def interleaving(seed):
        sched = Scheduler(Clock(), label="tie", master_seed=seed)
        order = []
        for name in "abcdefgh":
            sched.at(100, lambda name=name: order.append(name))
        sched.run_until_idle()
        return order

    assert interleaving(1) == interleaving(1)
    assert interleaving(2) == interleaving(2)
    # Different seeds explore different interleavings of the same
    # events (with 8! possible orders a collision would be suspicious).
    assert interleaving(1) != interleaving(2)


def test_timer_cancel_elides_event():
    sched = make_sched()
    fired = []
    keep = sched.at(100, lambda: fired.append("keep"))
    drop = sched.at(100, lambda: fired.append("drop"))
    drop.cancel()
    sched.run_until_idle()
    assert fired == ["keep"]
    assert keep.fired and not drop.fired


def test_events_scheduled_during_dispatch_run():
    sched = make_sched()
    order = []

    def first():
        order.append("first")
        sched.after(10, lambda: order.append("second"))

    sched.at(5, first)
    sched.run_until_idle()
    assert order == ["first", "second"]
    assert sched.clock.now == 15


# -- run loops --------------------------------------------------------------------


def test_run_until_lands_on_deadline():
    sched = make_sched()
    fired = []
    sched.at(100, lambda: fired.append(100))
    sched.at(900, lambda: fired.append(900))
    sched.run_until(500)
    assert fired == [100]
    assert sched.clock.now == 500  # landed exactly on the deadline
    sched.run_until_idle()
    assert fired == [100, 900]


def test_run_until_idle_returns_dispatch_count():
    sched = make_sched()
    for t in (10, 20, 30):
        sched.at(t, lambda: None)
    cancelled = sched.at(40, lambda: None)
    cancelled.cancel()
    assert sched.run_until_idle() == 3
    assert sched.events_run == 3


def test_runaway_loop_is_detected():
    sched = make_sched()

    def rearm():
        sched.call_soon(rearm)

    sched.call_soon(rearm)
    with pytest.raises(SchedulerError, match="runaway"):
        sched.run_until_idle(max_events=50)


def test_nested_run_is_rejected():
    sched = make_sched()
    errors = []

    def nested():
        try:
            sched.run_until_idle()
        except SchedulerError as exc:
            errors.append(str(exc))

    sched.call_soon(nested)
    sched.run_until_idle()
    assert errors and "already running" in errors[0]


# -- periodic timers --------------------------------------------------------------


def test_periodic_timer_is_drift_free():
    sched = make_sched()
    ticks = []

    def tick():
        ticks.append(sched.now)
        sched.clock.advance(3)  # work inside the tick must not skew the period

    sched.every(100, tick)
    sched.run_until(1000)
    assert ticks == [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]


def test_periodic_timer_cancel_and_fire_count():
    sched = make_sched()
    timer = sched.every(10, lambda: None)
    sched.run_until(35)
    timer.cancel()
    sched.run_until(100)
    assert timer.fire_count == 3
    assert timer.cancelled


def test_periodic_timer_rejects_nonpositive_period():
    sched = make_sched()
    with pytest.raises(SchedulerError):
        sched.every(0, lambda: None)


# -- waitables --------------------------------------------------------------------


def test_waitable_result_before_done_raises():
    with pytest.raises(SchedulerError):
        Waitable().result()


def test_completion_set_and_callbacks():
    done = Completion()
    seen = []
    done.add_done_callback(lambda w: seen.append(w.result()))
    done.set(42)
    assert done.done and seen == [42]
    # A callback added after completion fires immediately.
    done.add_done_callback(lambda w: seen.append(w.result()))
    assert seen == [42, 42]


def test_completion_fail_reraises():
    done = Completion()
    done.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        done.result()


# -- tasks ------------------------------------------------------------------------


def test_task_yield_none_and_str_are_cooperative():
    sched = make_sched()
    order = []

    def gen(name):
        order.append(f"{name}:0")
        yield
        order.append(f"{name}:1")
        yield "named-step"
        order.append(f"{name}:2")

    sched.spawn(gen("a"), label="a")
    sched.spawn(gen("b"), label="b")
    sched.run_until_idle()
    # Both tasks complete all steps, interleaved at the same instant.
    assert sorted(order) == ["a:0", "a:1", "a:2", "b:0", "b:1", "b:2"]
    assert sched.clock.now == 0  # cooperative yields consume no time


def test_task_yield_int_sleeps():
    sched = make_sched()
    marks = []

    def gen():
        marks.append(sched.now)
        yield 100
        marks.append(sched.now)
        yield 250
        marks.append(sched.now)
        return "done"

    task = sched.spawn(gen())
    (result,) = sched.run(task)
    assert result == "done"
    assert marks == [0, 100, 350]


def test_task_yield_waitable_receives_result():
    sched = make_sched()
    gate = Completion()

    def gen():
        value = yield gate
        return value * 2

    task = sched.spawn(gen())
    sched.after(50, lambda: gate.set(21))
    (result,) = sched.run(task)
    assert result == 42


def test_task_yield_waitable_error_propagates():
    sched = make_sched()
    gate = Completion()

    def gen():
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    task = sched.spawn(gen())
    sched.after(10, lambda: gate.fail(RuntimeError("io error")))
    (result,) = sched.run(task)
    assert result == "caught io error"


def test_task_waits_on_another_task():
    sched = make_sched()

    def child():
        yield 100
        return "child-result"

    def parent(child_task):
        got = yield child_task
        return f"parent saw {got}"

    child_task = sched.spawn(child(), label="child")
    parent_task = sched.spawn(parent(child_task), label="parent")
    results = sched.run(parent_task)
    assert results == ["parent saw child-result"]


def test_task_exception_is_stored_and_reraised():
    sched = make_sched()

    def gen():
        yield 10
        raise KeyError("lost")

    task = sched.spawn(gen())
    sched.run_until_idle()
    assert task.done and isinstance(task.error, KeyError)
    with pytest.raises(KeyError):
        task.result()


def test_task_yield_bool_is_rejected():
    sched = make_sched()

    def gen():
        yield True

    sched.spawn(gen())
    with pytest.raises(SchedulerError, match="bool"):
        sched.run_until_idle()


def test_task_yield_negative_sleep_is_rejected():
    sched = make_sched()

    def gen():
        yield -5

    sched.spawn(gen())
    with pytest.raises(SchedulerError, match="negative"):
        sched.run_until_idle()


def test_task_yield_garbage_is_rejected():
    sched = make_sched()

    def gen():
        yield object()

    sched.spawn(gen())
    with pytest.raises(SchedulerError, match="unsupported"):
        sched.run_until_idle()


def test_task_cancel_closes_generator():
    sched = make_sched()
    cleaned = []

    def gen():
        try:
            yield 1000
        finally:
            cleaned.append(True)

    task = sched.spawn(gen())
    sched.run_until(10)
    task.cancel()
    assert task.done and task.cancelled and cleaned == [True]
    sched.run_until_idle()  # the orphaned wakeup is a no-op


def test_run_detects_deadlock():
    sched = make_sched()
    forever = Completion()

    def gen():
        yield forever  # nobody ever sets this

    task = sched.spawn(gen(), label="stuck-task")
    with pytest.raises(SchedulerError, match="stuck-task"):
        sched.run(task)


def test_run_returns_results_in_order():
    sched = make_sched()

    def gen(delay, value):
        yield delay
        return value

    slow = sched.spawn(gen(500, "slow"))
    fast = sched.spawn(gen(10, "fast"))
    assert sched.run(slow, fast) == ["slow", "fast"]


# -- full-stream determinism ------------------------------------------------------


def test_same_seed_same_event_stream():
    def run(seed):
        sched = Scheduler(Clock(), label="replay", master_seed=seed)
        log = []

        def worker(name, period):
            for step in range(5):
                log.append((sched.now, name, step))
                yield period

        for name in ("w1", "w2", "w3"):
            sched.spawn(worker(name, 100), label=name)
        sched.every(70, lambda: log.append((sched.now, "timer", -1)))
        sched.run_until(600)
        return log

    assert run(0xAB) == run(0xAB)


# -- slab pooling, tombstones, ready ring (PR 8) ----------------------------------


def test_cancelled_timer_storm_compacts_heap():
    # Lazy deletion must not let a cancel storm pin the heap: once
    # tombstones dominate, the heap is rebuilt in place and pending()
    # falls back to roughly the live entry count.
    sched = make_sched()
    storm = [sched.at(1_000 + i, lambda: None) for i in range(1_000)]
    fired = []
    sched.at(5_000, lambda: fired.append(True), label="keeper")
    for timer in storm:
        timer.cancel()
    assert sched.pending() < 200          # ~1000 dead entries compacted away
    sched.run_until_idle()
    assert fired == [True]                # survivors still dispatch
    assert sched.pending() == 0


def test_compaction_preserves_survivor_order():
    def run(seed):
        sched = make_sched(seed=seed)
        order = []
        timers = [
            sched.at(100 + (i % 10), lambda i=i: order.append(i),
                     priority=i % 3)
            for i in range(400)
        ]
        for i, timer in enumerate(timers):
            if i % 4:                      # cancel 75% -> trips compaction
                timer.cancel()
        sched.run_until_idle()
        return order
    first = run(11)
    assert first == run(11)                # deterministic across runs
    assert sorted(first) == [i for i in range(400) if i % 4 == 0]


def test_same_timestamp_batch_order_matches_legacy_loop():
    # Both dispatch loops must resolve a same-instant batch by the
    # identical (priority, seeded tiebreak, seq) keys.
    def run(fast):
        sched = Scheduler(Clock(), label="test", master_seed=7, fast=fast)
        order = []
        for i in range(64):
            sched.at(100, lambda i=i: order.append(i), priority=i % 3)
        sched.run_until_idle()
        return order
    fast_order = run(True)
    assert fast_order == run(False)
    assert sorted(fast_order) == list(range(64))


def test_fast_and_legacy_loops_agree_under_cancel_storm():
    def run(fast):
        sched = Scheduler(Clock(), label="test", master_seed=3, fast=fast)
        order = []
        timers = [
            sched.at(10 * (i % 7), lambda i=i: order.append(i))
            for i in range(300)
        ]
        for i, timer in enumerate(timers):
            if i % 3 == 0:
                timer.cancel()
        sched.run_until_idle()
        return order, sched.events_run, sched.now
    assert run(True) == run(False)


def test_entry_pool_recycles_heap_slabs():
    sched = make_sched()
    for i in range(16):
        sched.at(i, lambda: None)
    assert sched._entry_pool == []
    sched.run_until_idle()
    assert len(sched._entry_pool) == 16    # popped slabs land in the pool
    recycled = {id(entry) for entry in sched._entry_pool}
    for i in range(16):
        sched.at(i, lambda: None)
    assert sched._entry_pool == []         # drained by the new schedules
    assert {id(entry) for entry in sched._heap} == recycled
    sched.run_until_idle()


def test_entry_pool_is_bounded():
    from repro.sim.sched import _ENTRY_POOL_MAX

    sched = make_sched()
    for i in range(_ENTRY_POOL_MAX + 512):
        sched.at(i, lambda: None)
    sched.run_until_idle()
    assert len(sched._entry_pool) == _ENTRY_POOL_MAX


def test_ready_ring_dispatches_fifo_regardless_of_seed():
    # Ring events skip the seeded tiebreak draw entirely: zero-delay
    # priority-0 work runs in strict submission order under any seed.
    def run(seed):
        sched = Scheduler(Clock(), label="test", master_seed=seed,
                          ready_ring=True)
        order = []
        for i in range(24):
            sched.call_soon(lambda i=i: order.append(i))
        sched.run_until_idle()
        return order
    assert run(1) == run(2) == list(range(24))


def test_ready_ring_only_captures_due_priority_zero_events():
    sched = Scheduler(Clock(), label="test", master_seed=7, ready_ring=True)
    order = []
    sched.at(50, lambda: order.append("future"))
    sched.call_soon(lambda: order.append("now"))
    sched.at(0, lambda: order.append("prio"), priority=1)
    sched.run_until_idle()
    # Ring drains before the heap; non-zero priority and future times
    # still take the heap path.
    assert order == ["now", "prio", "future"]


def test_ready_ring_cancel_is_honoured():
    sched = Scheduler(Clock(), label="test", ready_ring=True)
    fired = []
    timer = sched.call_soon(lambda: fired.append("cancelled"))
    sched.call_soon(lambda: fired.append("kept"))
    timer.cancel()
    sched.run_until_idle()
    assert fired == ["kept"]


def test_ready_ring_requires_fast_loop():
    with pytest.raises(SchedulerError, match="fast dispatch loop"):
        Scheduler(Clock(), fast=False, ready_ring=True)
    sched = make_sched()
    sched.fast = False
    with pytest.raises(SchedulerError, match="fast dispatch loop"):
        sched.enable_ready_ring()


def test_run_tolerates_duplicate_and_completed_waitables():
    sched = make_sched()

    def job():
        yield 10
        return "ok"

    done = Completion()
    done.set(42)
    task = sched.spawn(job())
    # Duplicates must not double-count in the O(1) completion countdown,
    # and an already-done waitable needs no events at all.
    assert sched.run(task, task, done, task) == ["ok", "ok", 42, "ok"]
    assert sched.run(done) == [42]
