"""Unit tests for the attach transaction / undo-stack machinery."""

import pytest

from repro.core.txn import AttachTransaction
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PERMANENT,
    register_fault_site,
)
from repro.sim.trace import Tracer

# these tests drive the txn against made-up step names, so their
# attach.* sites are not in the pipeline's step registry
register_fault_site("attach.two", "attach.go")


class _Host:
    """Minimal host: just the tracer and fault injector the txn needs."""

    def __init__(self):
        self.tracer = Tracer()
        self.faults = FaultInjector()


@pytest.fixture
def host():
    return _Host()


def test_rollback_runs_undo_actions_in_lifo_order(host):
    txn = AttachTransaction(host, label="t")
    order = []
    txn.push("a", lambda: order.append("a"))
    txn.push("b", lambda: order.append("b"))
    txn.push("c", lambda: order.append("c"))
    txn.rollback()
    assert order == ["c", "b", "a"]
    assert txn.finished
    assert txn.undo_failures == []


def test_discharged_entries_are_skipped(host):
    txn = AttachTransaction(host, label="t")
    order = []
    txn.push("a", lambda: order.append("a"))
    entry = txn.push("b", lambda: order.append("b"))
    txn.push("c", lambda: order.append("c"))
    assert txn.depth == 3
    txn.discharge(entry)
    assert txn.depth == 2
    txn.rollback()
    assert order == ["c", "a"]


def test_undo_failure_is_recorded_and_unwind_continues(host):
    txn = AttachTransaction(host, label="t")
    order = []

    def boom():
        raise RuntimeError("undo exploded")

    txn.push("first", lambda: order.append("first"))
    txn.push("broken", boom)
    txn.push("last", lambda: order.append("last"))
    txn.rollback()  # must not raise
    assert order == ["last", "first"]
    assert [f.label for f in txn.undo_failures] == ["broken"]
    assert isinstance(txn.undo_failures[0].error, RuntimeError)
    rb = host.tracer.find("txn", "rollback")[-1]
    assert rb.detail["undo_failures"] == 1
    assert host.tracer.find("txn", "undo_failed")[0].detail["action"] == "broken"


def test_commit_discards_stack_and_records_steps(host):
    txn = AttachTransaction(host, label="t")
    order = []
    txn.step("one")
    txn.push("a", lambda: order.append("a"))
    txn.step("two")
    txn.commit()
    assert order == []  # nothing undone
    assert txn.steps_completed == ["one", "two"]
    assert txn.depth == 0
    assert txn.finished
    assert host.tracer.find("txn", "commit")[-1].detail["steps"] == 2


def test_step_checks_fault_site_before_any_work(host):
    from repro.errors import PermanentFaultError

    txn = AttachTransaction(host, label="t")
    with host.faults.plan(
        FaultPlan([FaultSpec(site="attach.two", kind=PERMANENT)])
    ):
        txn.step("one")
        with pytest.raises(PermanentFaultError):
            txn.step("two")
        txn.rollback()
    # the failed step is reported, not counted as completed
    assert txn.steps_completed == ["one"]
    rb = host.tracer.find("txn", "rollback")[-1]
    assert rb.detail["failed_step"] == "two"


def test_rollback_suspends_fault_injection(host):
    """The chaos plan that failed the attach cannot fail the cleanup."""
    from repro.errors import PermanentFaultError

    txn = AttachTransaction(host, label="t")
    ran = []

    def undo_with_faultable_op():
        host.faults.check("cleanup.op")  # armed permanent fault on this site
        ran.append(True)

    with host.faults.plan(
        FaultPlan(
            [
                FaultSpec(site="cleanup.op", kind=PERMANENT),
                FaultSpec(site="attach.go", kind=PERMANENT),
            ]
        )
    ):
        txn.push("cleanup", undo_with_faultable_op)
        with pytest.raises(PermanentFaultError):
            txn.step("go")
        txn.rollback()
    assert ran == [True]
    assert txn.undo_failures == []
