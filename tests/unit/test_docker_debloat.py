"""Docker dataset, open tracer, debloat pipeline (E7 units)."""

import pytest

from repro.image.debloat import app_profile_paths, debloat_image, summarize
from repro.image.docker import ESSENTIAL_GROUPS, REMOVABLE_GROUPS, top40_images
from repro.image.tracer import OpenTracer
from repro.testbed import Testbed
from repro.units import MiB


def test_dataset_has_40_images():
    images = top40_images()
    assert len(images) == 40
    assert len({img.name for img in images}) == 40


def test_exactly_three_static_go_images():
    images = top40_images()
    go = [img for img in images if img.static_go]
    assert sorted(img.name for img in go) == ["consul", "registry", "traefik"]


def test_inventories_are_deterministic():
    a = {img.name: [(f.path, f.size) for f in img.files] for img in top40_images()}
    b = {img.name: [(f.path, f.size) for f in img.files] for img in top40_images()}
    assert a == b


def test_file_groups_partition():
    for img in top40_images():
        for f in img.files:
            assert f.group in ESSENTIAL_GROUPS + REMOVABLE_GROUPS


def test_essential_plus_removable_close_to_total():
    for img in top40_images():
        accounted = img.essential_size + img.removable_size
        assert 0.75 * img.total_size <= accounted <= 1.1 * img.total_size, img.name


def test_open_tracer_records_paths():
    tb = Testbed()
    hv = tb.launch_qemu(root_files={"/app/binary": b"x", "/app/lib.so": b"y"})
    guest = hv.guest
    with OpenTracer(guest) as tracer:
        handle = guest.kernel_vfs.open("/app/binary")
        guest.kernel_vfs.close(handle)
    assert "/app/binary" in tracer.result.opened
    assert "/app/lib.so" not in tracer.result.opened
    keep = tracer.result.keep_set()
    assert "/app" in keep and "/" in keep


def test_open_tracer_records_misses():
    tb = Testbed()
    hv = tb.launch_qemu()
    from repro.errors import VfsError

    with OpenTracer(hv.guest) as tracer:
        with pytest.raises(VfsError):
            hv.guest.kernel_vfs.open("/definitely/missing")
    assert "/definitely/missing" in tracer.result.missing


def test_open_tracer_restores_vfs_open():
    from repro.guestos.vfs import Vfs

    tb = Testbed()
    hv = tb.launch_qemu()
    with OpenTracer(hv.guest):
        assert "open" in hv.guest.kernel_vfs.__dict__   # instance override
    assert "open" not in hv.guest.kernel_vfs.__dict__   # class method again
    assert hv.guest.kernel_vfs.open.__func__ is Vfs.open


def test_tracer_follows_symlink_chains():
    tb = Testbed()
    hv = tb.launch_qemu(root_files={"/usr/lib/libreal.so": b"so"})
    vfs = hv.guest.kernel_vfs
    vfs.symlink("/usr/lib/libreal.so", "/usr/lib/lib.so.1")
    with OpenTracer(hv.guest) as tracer:
        vfs.close(vfs.open("/usr/lib/lib.so.1"))
    assert "/usr/lib/libreal.so" in tracer.result.opened
    assert "/usr/lib/lib.so.1" in tracer.result.opened


def test_debloat_single_dynamic_image():
    tb = Testbed()
    image = next(img for img in top40_images() if img.name == "nginx")
    result = debloat_image(image, testbed=tb)
    assert result.app_still_works
    assert 0.50 <= result.reduction <= 0.97
    assert result.files_after < result.files_before


def test_debloat_static_go_image_barely_shrinks():
    tb = Testbed()
    image = next(img for img in top40_images() if img.name == "traefik")
    result = debloat_image(image, testbed=tb)
    assert result.app_still_works
    assert result.reduction < 0.10


def test_debloat_keeps_all_profile_paths():
    tb = Testbed()
    image = next(img for img in top40_images() if img.name == "redis")
    profile = set(app_profile_paths(image))
    result = debloat_image(image, testbed=tb)
    assert result.app_still_works  # implies all profile paths survived


def test_summarize_fields():
    results = [
        type("R", (), {"reduction": r, "app_still_works": True})()
        for r in (0.05, 0.5, 0.9)
    ]
    s = summarize(results)  # type: ignore[arg-type]
    assert s["count"] == 3
    assert s["below_10pct"] == 1
    assert abs(s["mean_reduction"] - (0.05 + 0.5 + 0.9) / 3) < 1e-9
