"""Unit tests for the deterministic fault-injection substrate."""

import pytest

from repro.errors import (
    FaultInjectedError,
    PermanentFaultError,
    SeccompViolationError,
    TransientFaultError,
)
from repro.sim.faults import (
    DEFAULT_CHAOS_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NullFaultInjector,
    PERMANENT,
    TRANSIENT,
    known_fault_sites,
    register_fault_site,
    validate_fault_site,
)


# -- FaultSpec --------------------------------------------------------------

def test_spec_rejects_bad_kind_and_indices():
    with pytest.raises(ValueError):
        FaultSpec(site="x", kind="sometimes")
    with pytest.raises(ValueError):
        FaultSpec(site="x", occurrence=0)
    with pytest.raises(ValueError):
        FaultSpec(site="x", count=0)


def test_transient_matches_window_then_heals():
    spec = FaultSpec(site="s", occurrence=2, kind=TRANSIENT, count=2)
    assert [spec.matches(h) for h in (1, 2, 3, 4, 5)] == [
        False, True, True, False, False
    ]


def test_permanent_matches_forever():
    spec = FaultSpec(site="s", occurrence=3, kind=PERMANENT)
    assert [spec.matches(h) for h in (1, 2, 3, 4, 100)] == [
        False, False, True, True, True
    ]


# -- FaultPlan.derive -------------------------------------------------------

def test_derive_is_deterministic_per_label_and_seed():
    a = FaultPlan.derive("chaos:qemu", master_seed=7)
    b = FaultPlan.derive("chaos:qemu", master_seed=7)
    assert a.specs == b.specs
    assert all(s.site in DEFAULT_CHAOS_SITES for s in a.specs)


def test_derive_varies_with_label_and_seed():
    base = FaultPlan.derive("chaos:qemu", master_seed=7, faults=6)
    other_label = FaultPlan.derive("chaos:crosvm", master_seed=7, faults=6)
    other_seed = FaultPlan.derive("chaos:qemu", master_seed=8, faults=6)
    assert base.specs != other_label.specs
    assert base.specs != other_seed.specs


def test_plan_mentions_prefix():
    plan = FaultPlan([FaultSpec(site="physmem.read")])
    assert plan.mentions("physmem.")
    assert not plan.mentions("ptrace.")


# -- FaultInjector ----------------------------------------------------------

def test_disarmed_injector_is_inert():
    inj = FaultInjector()
    for _ in range(10):
        inj.check("anything")
    assert not inj.armed
    assert inj.fired == []


def test_transient_fires_once_then_heals():
    inj = FaultInjector()
    with inj.plan(FaultPlan([FaultSpec(site="op", occurrence=2)])):
        inj.check("op")
        with pytest.raises(TransientFaultError) as exc:
            inj.check("op")
        inj.check("op")  # healed
        assert exc.value.site == "op"
        assert exc.value.occurrence == 2
        assert isinstance(exc.value, FaultInjectedError)
        assert [f.site for f in inj.fired] == ["op"]
    assert not inj.armed


def test_permanent_fires_on_every_hit():
    inj = FaultInjector()
    with inj.plan(FaultPlan([FaultSpec(site="op", kind=PERMANENT)])):
        for _ in range(3):
            with pytest.raises(PermanentFaultError):
                inj.check("op")
        assert len(inj.fired) == 3


def test_sites_are_counted_independently():
    inj = FaultInjector()
    with inj.plan(FaultPlan([FaultSpec(site="b", occurrence=2)])):
        inj.check("a")
        inj.check("b")
        inj.check("a")
        with pytest.raises(TransientFaultError):
            inj.check("b")
        assert inj.hits("a") == 2
        assert inj.hits("b") == 2


def test_suspended_masks_injection():
    inj = FaultInjector()
    with inj.plan(FaultPlan([FaultSpec(site="op", kind=PERMANENT)])):
        with inj.suspended():
            inj.check("op")       # would fire if not suspended
            with inj.suspended():
                inj.check("op")   # nesting
        with pytest.raises(PermanentFaultError):
            inj.check("op")
    assert len(inj.fired) == 1


def test_seccomp_kill_flavor_raises_seccomp_error():
    inj = FaultInjector()
    spec = FaultSpec(site="seccomp.injected", kind=PERMANENT, flavor="seccomp_kill")
    with inj.plan(FaultPlan([spec])):
        with pytest.raises(SeccompViolationError):
            inj.check("seccomp.injected", syscall="eventfd2", thread="fc_vmm")


def test_arm_installs_and_disarm_removes_physmem_hook():
    from repro.mem.physmem import PhysicalMemory

    inj = FaultInjector()
    assert PhysicalMemory.fault_check is None
    with inj.plan(FaultPlan([FaultSpec(site="physmem.write", kind=PERMANENT)])):
        assert PhysicalMemory.fault_check is not None
        mem = PhysicalMemory(4096)
        mem.read(0, 8)  # reads unaffected by a write-only plan
        with pytest.raises(PermanentFaultError):
            mem.write(0, b"x")
    assert PhysicalMemory.fault_check is None
    mem.write(0, b"x")  # disarmed: writes work again


def test_rearm_resets_hits_and_fired():
    inj = FaultInjector()
    inj.arm(FaultPlan([FaultSpec(site="op", occurrence=1)]))
    with pytest.raises(TransientFaultError):
        inj.check("op")
    inj.arm(FaultPlan([FaultSpec(site="op", occurrence=1)]))
    assert inj.hits("op") == 0
    assert inj.fired == []
    with pytest.raises(TransientFaultError):
        inj.check("op")
    inj.disarm()


def test_flag_quirk_records_without_raising():
    register_fault_site("quirk.x")
    inj = FaultInjector()
    with inj.plan(FaultPlan([FaultSpec(site="quirk.x", kind=PERMANENT)])):
        assert inj.flag("quirk.x") is True
        assert inj.flag("quirk.other") is False
        assert [f.site for f in inj.fired] == ["quirk.x"]
    assert inj.flag("quirk.x") is False  # disarmed


def test_null_injector_never_arms_never_fires():
    inj = NullFaultInjector()
    with pytest.raises(RuntimeError):
        inj.arm(FaultPlan([FaultSpec(site="op")]))
    inj.check("op")
    assert inj.flag("quirk.x") is False


# -- Known-site registry ----------------------------------------------------

def test_arm_rejects_typoed_attach_site():
    from repro.errors import UnknownFaultSiteError

    inj = FaultInjector()
    with pytest.raises(UnknownFaultSiteError, match="attach.setup_irqfd"):
        inj.arm(FaultPlan([FaultSpec(site="attach.setup_irqfd")]))
    assert not inj.armed


def test_arm_rejects_misshapen_ioctl_and_syscall_sites():
    from repro.errors import UnknownFaultSiteError

    inj = FaultInjector()
    # lowercase request name: the classic ioctl typo
    with pytest.raises(UnknownFaultSiteError):
        inj.arm(FaultPlan([FaultSpec(site="ioctl.kvm_irqfd")]))
    # uppercase syscall name: family shapes are crossed
    with pytest.raises(UnknownFaultSiteError):
        inj.arm(FaultPlan([FaultSpec(site="syscall.EVENTFD2")]))


def test_every_default_chaos_site_validates():
    for site in DEFAULT_CHAOS_SITES:
        validate_fault_site(site)
    for site in known_fault_sites():
        validate_fault_site(site)


def test_registered_site_passes_validation():
    from repro.errors import UnknownFaultSiteError

    with pytest.raises(UnknownFaultSiteError):
        validate_fault_site("quirk.bespoke_for_this_test")
    register_fault_site("quirk.bespoke_for_this_test")
    validate_fault_site("quirk.bespoke_for_this_test")
    assert "quirk.bespoke_for_this_test" in known_fault_sites()


def test_unreserved_sites_stay_free_form():
    # bespoke harness sites outside the reserved families arm freely
    FaultInjector().arm(FaultPlan([FaultSpec(site="cleanup.op")]))
