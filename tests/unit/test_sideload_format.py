"""SELF blob format: build, parse, relocation slots, corruption."""

import struct

import pytest

from repro.errors import SideloadError
from repro.sideload import (
    HEADER_SIZE,
    RELOC_ENTRY_SIZE,
    SCRATCH_SIZE,
    SELF_MAGIC,
    build_blob,
    pack_config,
    parse_blob,
    reloc_slot_offset,
    unpack_config,
)


def _reader(blob: bytes):
    return lambda off, length: blob[off : off + length]


def test_build_parse_roundtrip():
    blob = build_blob(
        "test-prog",
        ["printk", "filp_open"],
        {"key": b"value", "other": b"\x00\x01"},
        b"PAYLOAD",
    )
    parsed = parse_blob(_reader(blob))
    assert parsed.program_id == "test-prog"
    assert [r.name for r in parsed.relocs] == ["printk", "filp_open"]
    assert all(r.value == 0 for r in parsed.relocs)
    assert parsed.config == {"key": b"value", "other": b"\x00\x01"}
    assert parsed.payload == b"PAYLOAD"
    assert parsed.total_size == len(blob)


def test_reloc_patching():
    blob = bytearray(build_blob("p", ["printk"], {}, b""))
    offset = reloc_slot_offset(bytes(blob), 0)
    struct.pack_into("<Q", blob, offset, 0xFFFFFFFF81234567)
    parsed = parse_blob(_reader(bytes(blob)))
    assert parsed.relocs[0].value == 0xFFFFFFFF81234567


def test_reloc_index_out_of_range():
    blob = build_blob("p", ["printk"], {}, b"")
    with pytest.raises(SideloadError):
        reloc_slot_offset(blob, 1)


def test_bad_magic_rejected():
    blob = bytearray(build_blob("p", [], {}, b""))
    blob[0:4] = b"EVIL"
    with pytest.raises(SideloadError, match="magic"):
        parse_blob(_reader(bytes(blob)))


def test_bad_version_rejected():
    blob = bytearray(build_blob("p", [], {}, b""))
    struct.pack_into("<I", blob, 16, 999)
    with pytest.raises(SideloadError, match="version"):
        parse_blob(_reader(bytes(blob)))


def test_out_of_bounds_section_rejected():
    blob = bytearray(build_blob("p", [], {}, b"payload"))
    # Corrupt the payload offset to point past the end.
    struct.pack_into("<I", blob, 0x2C, len(blob) + 100)
    with pytest.raises(SideloadError, match="out of bounds"):
        parse_blob(_reader(bytes(blob)))


def test_symbol_name_length_limit():
    with pytest.raises(SideloadError, match="too long"):
        build_blob("p", ["x" * 40], {}, b"")


def test_scratch_area_sized_for_registers():
    from repro.kvm.vcpu import GP_REGISTERS

    assert SCRATCH_SIZE >= len(GP_REGISTERS) * 8


def test_config_tlv_roundtrip():
    config = {"a": b"", "binary": bytes(range(256)), "z" * 60: b"x"}
    assert unpack_config(pack_config(config)) == config


def test_config_corrupt_rejected():
    with pytest.raises(SideloadError):
        unpack_config(b"\x05\x00abc")  # truncated key


def test_blob_sections_are_aligned():
    blob = build_blob("prog", ["a", "b", "c"], {"k": b"v"}, b"x" * 33)
    header = struct.unpack_from("<16sIIIIIIIIIII", blob, 0)
    reloc_off, payload_off, scratch_off = header[4], header[8], header[10]
    assert reloc_off % 8 == 0
    assert payload_off % 8 == 0
    assert scratch_off % 8 == 0
