"""Core-module units: gateway, libbuild, overlay, device host."""

import pytest

from repro.core.gateway import GuestMemoryGateway
from repro.core.libbuild import (
    STAGE2_GUEST_PATH,
    build_library,
    plan_library,
)
from repro.core.overlay import GUEST_MOUNT_ROOT, build_overlay
from repro.errors import SideloadError, VmshError
from repro.guestos.fs import Filesystem
from repro.guestos.kfunctions import REQUIRED_KERNEL_FUNCTIONS
from repro.guestos.version import KernelVersion
from repro.guestos.vfs import MountNamespace, Vfs
from repro.host.ebpf import MemslotSnooper
from repro.sideload import parse_blob
from repro.testbed import Testbed
from repro.units import PAGE_SIZE


# -- gateway ----------------------------------------------------------------

def _gateway():
    tb = Testbed()
    hv = tb.launch_qemu()
    vmsh = tb.host.spawn_process("vmsh-x")
    snooper = MemslotSnooper(tb.host, vmsh)
    snooper.attach()
    tb.host.syscall(hv.process.main_thread, "ioctl", hv.vm_fd,
                    "KVM_CHECK_EXTENSION", "X")
    records = snooper.read_map()
    snooper.detach()
    gateway = GuestMemoryGateway(tb.host, vmsh.main_thread, hv.pid, records)
    gateway.set_cr3(hv.guest.cr3)
    return tb, hv, gateway


def test_gateway_phys_matches_guest_memory():
    tb, hv, gateway = _gateway()
    hv.guest.memory.write(0x9000, b"through-the-gateway")
    assert gateway.phys.read(0x9000, 19) == b"through-the-gateway"


def test_gateway_virt_read_crosses_pages():
    tb, hv, gateway = _gateway()
    vbase = hv.guest.image.vbase
    direct = hv.guest.read_virt(vbase + 4090, 16)
    assert gateway.read_virt(vbase + 4090, 16) == direct


def test_gateway_write_virt_lands_in_guest():
    tb, hv, gateway = _gateway()
    target = hv.guest.image.vbase + 0x180000  # inside the mapped image
    gateway.write_virt(target, b"vmsh-was-here")
    assert hv.guest.read_virt(target, 13) == b"vmsh-was-here"


def test_gateway_requires_cr3_for_virt():
    tb, hv, gateway = _gateway()
    gateway.cr3 = 0
    with pytest.raises(SideloadError, match="CR3"):
        gateway.read_virt(hv.guest.image.vbase, 8)


def test_gateway_read_cstring():
    tb, hv, gateway = _gateway()
    banner_vaddr = hv.guest.image.symbols["linux_banner"]
    assert gateway.read_cstring(banner_vaddr).startswith("Linux version")


def test_gateway_charges_procvm_costs():
    tb, hv, gateway = _gateway()
    before = tb.costs.count("procvm_copy")
    gateway.read_virt(hv.guest.image.vbase, 4096)
    assert tb.costs.count("procvm_copy") > before


def test_gateway_tlb_caches_page_walks():
    tb, hv, gateway = _gateway()
    vbase = hv.guest.image.vbase
    gateway.read_virt(vbase, 4 * PAGE_SIZE)
    misses = gateway.tlb_misses
    assert misses >= 4
    assert gateway.tlb_hits == 0
    before = tb.costs.count("procvm_copy")
    gateway.read_virt(vbase, 4 * PAGE_SIZE)
    assert gateway.tlb_misses == misses
    assert gateway.tlb_hits >= 4
    # With walks cached the re-read pays only the data copy, not four
    # table reads per page.
    assert tb.costs.count("procvm_copy") - before <= 2
    assert 0.0 < gateway.tlb_hit_rate < 1.0
    # Rewriting the same CR3 value must not flush.
    gateway.set_cr3(gateway.cr3)
    gateway.read_virt(vbase, PAGE_SIZE)
    assert gateway.tlb_misses == misses


def test_gateway_refresh_memslots_flushes_tlb_keeps_stats():
    tb, hv, gateway = _gateway()
    vbase = hv.guest.image.vbase
    gateway.read_virt(vbase, PAGE_SIZE)
    stats = gateway.phys.stats
    reads_before = stats.reads
    gateway.refresh_memslots(gateway.translator.slots())
    assert gateway._tlb == {}
    assert gateway.phys.stats is stats          # counters stay cumulative
    assert stats.reads == reads_before
    misses = gateway.tlb_misses
    gateway.read_virt(vbase, PAGE_SIZE)         # still correct, re-walked
    assert gateway.tlb_misses > misses


# -- libbuild --------------------------------------------------------------------

def test_library_blob_is_parseable():
    plan = plan_library(KernelVersion(5, 10))
    blob = build_library(plan)
    parsed = parse_blob(lambda off, ln: blob[off : off + ln])
    assert parsed.program_id == "vmsh-kernel-lib"
    assert [r.name for r in parsed.relocs] == list(REQUIRED_KERNEL_FUNCTIONS)
    assert parsed.payload.startswith(b"#!SIMELF:vmsh-stage2")
    assert parsed.config["stage2_path"] == STAGE2_GUEST_PATH.encode()


def test_library_abi_tag_tracks_version():
    old = build_library(plan_library(KernelVersion(4, 4)))
    new = build_library(plan_library(KernelVersion(5, 10)))
    assert parse_blob(lambda o, l: old[o : o + l]).config["abi"] == b"pos_second"
    assert parse_blob(lambda o, l: new[o : o + l]).config["abi"] == b"pos_pointer"


def test_library_struct_payloads_differ_by_version():
    old = build_library(plan_library(KernelVersion(4, 4)))
    new = build_library(plan_library(KernelVersion(5, 10)))
    old_cfg = parse_blob(lambda o, l: old[o : o + l]).config
    new_cfg = parse_blob(lambda o, l: new[o : o + l]).config
    assert old_cfg["console_pdev"] != new_cfg["console_pdev"]


def test_plan_rejects_unknown_transport():
    with pytest.raises(ValueError):
        plan_library(KernelVersion(5, 10), transport="scsi")


def test_exec_device_config_only_when_requested():
    without = build_library(plan_library(KernelVersion(5, 10)))
    with_exec = build_library(plan_library(KernelVersion(5, 10), exec_device=True))
    assert b"exec_pdev" not in without
    assert "exec_pdev" in parse_blob(
        lambda o, l: with_exec[o : o + l]
    ).config


def test_command_travels_in_umh_args():
    plan = plan_library(KernelVersion(5, 10), command="/bin/busybox")
    blob = build_library(plan)
    from repro.guestos.kfunctions import UmhArgs

    config = parse_blob(lambda o, l: blob[o : o + l]).config
    umh = UmhArgs.unpack(config["umh"], KernelVersion(5, 10))
    assert "/bin/busybox" in umh.argv


# -- overlay ---------------------------------------------------------------------------

def _base_namespace():
    ns = MountNamespace()
    vfs = Vfs(ns)
    root = Filesystem("ext4", label="guest-root")
    vfs.mount(root, "/")
    vfs.makedirs("/data")
    vfs.write_file("/etc-marker", b"guest")
    extra = Filesystem("xfs", label="guest-data")
    vfs.mount(extra, "/data")
    vfs.write_file("/data/db", b"payload")
    return ns, vfs


def test_overlay_moves_all_guest_mounts():
    base_ns, base_vfs = _base_namespace()
    image_fs = Filesystem("vmshfs", label="image")
    result = build_overlay(image_fs, base_ns)
    overlay_vfs = result.vfs
    assert overlay_vfs.read_file(f"{GUEST_MOUNT_ROOT}/etc-marker") == b"guest"
    assert overlay_vfs.read_file(f"{GUEST_MOUNT_ROOT}/data/db") == b"payload"
    # Root of the overlay is the image, not the guest root.
    assert overlay_vfs.ns.root_mount().fs is image_fs


def test_overlay_does_not_mutate_base_namespace():
    base_ns, base_vfs = _base_namespace()
    mounts_before = [(m.path, m.fs.fs_id) for m in base_ns.mounts()]
    build_overlay(Filesystem("vmshfs"), base_ns)
    assert [(m.path, m.fs.fs_id) for m in base_ns.mounts()] == mounts_before
    assert base_vfs.read_file("/etc-marker") == b"guest"


def test_overlay_nested_mount_order():
    """Deeper mounts must land inside the relocated parents."""
    base_ns, base_vfs = _base_namespace()
    deeper = Filesystem("tmpfs", label="deeper")
    base_vfs.makedirs("/data/cache")
    base_vfs.mount(deeper, "/data/cache")
    base_vfs.write_file("/data/cache/hot", b"hot")
    result = build_overlay(Filesystem("vmshfs"), base_ns)
    assert result.vfs.read_file(f"{GUEST_MOUNT_ROOT}/data/cache/hot") == b"hot"


def test_overlay_writes_stay_in_image():
    base_ns, base_vfs = _base_namespace()
    image_fs = Filesystem("vmshfs")
    result = build_overlay(image_fs, base_ns)
    result.vfs.write_file("/only-overlay", b"x")
    assert not base_vfs.exists("/only-overlay")


# -- device host ------------------------------------------------------------------------

def test_device_host_rejects_foreign_mmio():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    host = session.device_host
    assert host.contains(host.mmio_base)
    assert not host.contains(0xD0000000)      # the hypervisor's region
    with pytest.raises(VmshError):
        host.handle_mmio(False, 0xD0000000, 4, 0)
