"""vmsh-net on the shared device core: frames, steering, negotiation.

The per-VMM quirk rows (``VIRTIO_NET_QUEUE_PAIRS_MAX``,
``VIRTIO_EVENT_IDX``) are pinned here too: a driver must not be able
to ack a feature its VMM never offered, and pair counts clamp to the
flavor's ceiling.
"""

import pytest

from repro.errors import VirtioError
from repro.hypervisors.flavors import (
    CloudHypervisor,
    Crosvm,
    Firecracker,
    Kvmtool,
    Qemu,
)
from repro.testbed import Testbed
from repro.virtio import constants as C
from repro.virtio.net import (
    BROADCAST_MAC,
    frame_dst,
    frame_payload,
    frame_src,
    make_frame,
)


def _nic_pair(flavor=Qemu, **launch_kwargs):
    tb = Testbed()
    kwargs = {"seccomp": False} if flavor is Firecracker else {}
    kwargs.update(launch_kwargs)
    hv = tb.launch(flavor, nic=True, **kwargs)
    return tb, hv, hv.guest.net_devices["eth0"], hv.nics["net0"]


# -- frame helpers -----------------------------------------------------------

def test_frame_roundtrip():
    frame = make_frame(b"\x02" * 6, b"\x04" * 6, b"hello")
    assert frame_dst(frame) == b"\x02" * 6
    assert frame_src(frame) == b"\x04" * 6
    assert frame_payload(frame) == b"hello"


def test_bad_mac_length_rejected():
    with pytest.raises(VirtioError):
        make_frame(b"\x02" * 5, b"\x04" * 6, b"x")


def test_oversized_frame_rejected():
    with pytest.raises(VirtioError):
        make_frame(b"\x02" * 6, b"\x04" * 6, b"\x00" * 4096)


# -- device/driver data path -------------------------------------------------

def test_guest_probes_nic_with_device_mac():
    _tb, hv, nic, device = _nic_pair()
    assert nic.mac == device.mac
    assert nic.link_up


def test_tx_frame_reaches_the_fabric_sink():
    _tb, hv, nic, device = _nic_pair()
    seen = []
    device.connect_tx(lambda frame, pair: seen.append((frame, pair)))
    frame = make_frame(BROADCAST_MAC, nic.mac, b"out")
    nic.send(frame)
    assert seen == [(frame, 0)]
    assert device.frames_tx == 1


def test_rx_frame_reaches_the_driver_callback():
    _tb, hv, nic, device = _nic_pair()
    got = []
    nic.on_receive(lambda frame, pair: got.append((frame, pair)))
    frame = make_frame(device.mac, b"\x02" * 6, b"in")
    device.deliver(frame)
    assert got == [(frame, 0)]
    assert device.frames_rx == 1


def test_rx_burst_keeps_frame_payloads_distinct():
    """Batched RX completions must not cross buffers: the driver
    harvests the whole batch before reposting any head (a reposted
    head can collide with a later completion in the same batch)."""
    _tb, hv, nic, device = _nic_pair()
    got = []
    nic.on_receive(lambda frame, pair: got.append(frame_payload(frame)))
    peer = b"\x02" * 6
    # Queue several frames while the flush is deferred by stealing the
    # ring's readiness, then let one delivery flush them all at once.
    device._pending_rx[0].extend(
        make_frame(device.mac, peer, b"frame-%d" % i) for i in range(4)
    )
    device.deliver(make_frame(device.mac, peer, b"frame-4"))
    assert got == [b"frame-%d" % i for i in range(5)]


def test_rx_backlog_drops_beyond_limit():
    _tb, hv, nic, device = _nic_pair()
    # fill the pending queue past the backlog with the ring stalled
    device.queues[0].ready = False
    frame = make_frame(device.mac, b"\x02" * 6, b"x")
    for _ in range(device.RX_BACKLOG + 5):
        device.deliver(frame)
    assert device.rx_dropped == 5


def test_runt_inbound_frame_rejected():
    _tb, hv, nic, device = _nic_pair()
    with pytest.raises(VirtioError):
        device.deliver(b"\x00" * 6)


# -- multi-queue negotiation and quirk rows ----------------------------------

FLAVOR_PAIR_CEILING = [
    (Qemu, 8),
    (Crosvm, 4),
    (Firecracker, 1),
    (Kvmtool, 1),
    (CloudHypervisor, 8),
]


@pytest.mark.parametrize("flavor,ceiling", FLAVOR_PAIR_CEILING)
def test_queue_pairs_clamp_to_the_flavor_ceiling(flavor, ceiling):
    _tb, hv, nic, device = _nic_pair(flavor, nic_queue_pairs=8)
    assert device.queue_pairs == ceiling
    assert nic.queue_pairs == ceiling
    assert len(nic.rx_rings) == ceiling
    assert len(nic.tx_rings) == ceiling


def test_single_pair_device_does_not_offer_mq():
    _tb, hv, nic, device = _nic_pair(Kvmtool, nic_queue_pairs=8)
    assert not device.device_features & C.VIRTIO_NET_F_MQ
    assert device.pairs_in_use == 1


def test_acking_unoffered_mq_raises():
    _tb, hv, nic, device = _nic_pair(Firecracker, nic_queue_pairs=4)
    with pytest.raises(VirtioError, match="unoffered"):
        nic.transport.write32(
            C.REG_DRIVER_FEATURES,
            nic.transport.features | C.VIRTIO_NET_F_MQ,
        )


def test_acking_event_idx_on_kvmtool_raises():
    _tb, hv, nic, device = _nic_pair(Kvmtool)
    assert not device.device_features & C.VIRTIO_RING_F_EVENT_IDX
    with pytest.raises(VirtioError, match="unoffered"):
        nic.transport.write32(
            C.REG_DRIVER_FEATURES,
            nic.transport.features | C.VIRTIO_RING_F_EVENT_IDX,
        )


def test_multiqueue_steering_spreads_flows():
    _tb, hv, nic, device = _nic_pair(Qemu, nic_queue_pairs=4)
    pairs_hit = set()
    got = []
    nic.on_receive(lambda frame, pair: got.append(pair))
    for i in range(32):
        src = bytes([0x02, 0, 0, 0, 0, i])
        device.deliver(make_frame(device.mac, src, b"flow"))
    pairs_hit.update(got)
    assert len(got) == 32
    assert len(pairs_hit) > 1, "flow hash uses more than one pair"
    # the same flow always lands on the same pair
    first = got[0]
    device.deliver(make_frame(device.mac, bytes([0x02, 0, 0, 0, 0, 0]), b"x"))
    assert got[-1] == first


def test_explicit_pair_delivery_bounds_checked():
    _tb, hv, nic, device = _nic_pair(Qemu, nic_queue_pairs=2)
    with pytest.raises(VirtioError):
        device.deliver(make_frame(device.mac, b"\x02" * 6, b"x"), pair=7)


def test_tx_burst_windows_are_doorbell_efficient():
    _tb, hv, nic, device = _nic_pair()
    sink = []
    device.connect_tx(lambda frame, pair: sink.append(frame))
    frames = [make_frame(BROADCAST_MAC, nic.mac, b"b%d" % i)
              for i in range(20)]
    kicks_before = nic._m_kicks.value if nic._m_kicks else None
    nic.send_burst(frames)
    assert sink == frames
    assert device.frames_tx == 20
    if kicks_before is not None:
        # EVENT_IDX coalesces a 20-frame burst into far fewer kicks
        assert nic._m_kicks.value - kicks_before < 20
