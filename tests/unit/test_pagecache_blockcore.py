"""Page cache behaviour and block devices."""

import pytest

from repro.errors import GuestError
from repro.guestos.blockcore import MemoryBlockDevice, NativeDisk
from repro.guestos.pagecache import PageCache
from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.units import MiB, PAGE_SIZE


def test_cache_miss_then_hit():
    cache = PageCache()
    assert cache.lookup(1, 1, 0) is None
    cache.insert(1, 1, 0, b"data")
    assert cache.lookup(1, 1, 0)[:4] == b"data"
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_write_through_cache_marks_dirty():
    cache = PageCache()
    cache.write_through_cache(1, 1, 0, 100, b"dirty")
    dirty = cache.dirty_pages_of(1, 1)
    assert len(dirty) == 1
    index, page = dirty[0]
    assert index == 0
    assert page[100:105] == b"dirty"
    cache.clean(1, 1, 0)
    assert cache.dirty_pages_of(1, 1) == []
    assert cache.stats.writebacks == 1


def test_dirty_counters_per_fs():
    cache = PageCache()
    cache.write_through_cache(1, 1, 0, 0, b"a")
    cache.write_through_cache(1, 2, 0, 0, b"b")
    cache.write_through_cache(2, 1, 0, 0, b"c")
    assert cache.dirty_count(1) == 2
    assert cache.dirty_inodes(1) == [1, 2]
    assert cache.dirty_count(2) == 1


def test_invalidate_inode():
    cache = PageCache()
    cache.insert(1, 1, 0, b"x")
    cache.write_through_cache(1, 1, 1, 0, b"y")
    cache.invalidate_inode(1, 1)
    assert cache.lookup(1, 1, 0) is None
    assert cache.dirty_pages_of(1, 1) == []


def test_drop_clean_keeps_dirty():
    cache = PageCache()
    cache.insert(1, 1, 0, b"clean")
    cache.write_through_cache(1, 1, 1, 0, b"dirty")
    cache.drop_clean()
    assert cache.lookup(1, 1, 0) is None
    assert cache.lookup(1, 1, 1) is not None


def test_eviction_prefers_clean():
    cache = PageCache(capacity_pages=2)
    cache.insert(1, 1, 0, b"clean")
    cache.write_through_cache(1, 1, 1, 0, b"dirty")
    cache.insert(1, 1, 2, b"new")          # evicts the clean page
    assert cache.lookup(1, 1, 0) is None
    assert len(cache.dirty_pages_of(1, 1)) == 1


def test_cache_hit_charges_less_than_insert():
    costs = CostModel(Clock())
    cache = PageCache(costs)
    cache.insert(1, 1, 0, b"x")
    after_insert = costs.clock.now
    cache.lookup(1, 1, 0)
    assert costs.clock.now - after_insert < after_insert


def test_oversized_page_rejected():
    cache = PageCache()
    with pytest.raises(ValueError):
        cache.insert(1, 1, 0, b"x" * (PAGE_SIZE + 1))
    with pytest.raises(ValueError):
        cache.write_through_cache(1, 1, 0, PAGE_SIZE - 1, b"xy")


# -- block devices ------------------------------------------------------------

def test_memory_block_device_roundtrip():
    device = MemoryBlockDevice("m", 1 * MiB)
    device.write_sectors(10, b"\xab" * 1024)
    assert device.read_sectors(10, 2) == b"\xab" * 1024
    assert device.read_sectors(100, 1) == b"\x00" * 512


def test_block_device_bounds():
    device = MemoryBlockDevice("m", 1 * MiB)
    with pytest.raises(GuestError):
        device.read_sectors(device.capacity_sectors, 1)
    with pytest.raises(ValueError):
        device.write_sectors(0, b"odd-size")


def test_native_disk_charges_costs():
    costs = CostModel(Clock())
    disk = NativeDisk("nvme", 1 * MiB, costs=costs)
    disk.write_sectors(0, b"\x01" * 512)
    assert costs.count("disk_io") == 1
    assert costs.count("syscall") == 1


def test_native_disk_trim():
    disk = NativeDisk("nvme", 1 * MiB)
    disk.write_sectors(0, b"\x01" * 512)
    disk.discard_all()
    assert disk.read_sectors(0, 1) == b"\x00" * 512


def test_native_disk_supports_pquota():
    assert NativeDisk("nvme", 1 * MiB).supports_pquota
    assert not MemoryBlockDevice("m", 1 * MiB).supports_pquota
