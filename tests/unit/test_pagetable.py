"""x86-64 page tables: mapping, translation, scanning."""

import itertools

import pytest

from repro.errors import PageFaultError
from repro.mem.layout import canonical, kaslr_slot_to_vaddr
from repro.mem.pagetable import (
    PTE_NX,
    PTE_PRESENT,
    PTE_WRITABLE,
    PageTableBuilder,
    PageTableWalker,
)
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB, PAGE_SIZE


@pytest.fixture()
def env():
    mem = PhysicalMemory(16 * MiB)
    alloc = itertools.count(1 * MiB, PAGE_SIZE)
    builder = PageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = PageTableWalker(mem.read_u64)
    cr3 = builder.new_root()
    return mem, builder, walker, cr3


def test_map_and_translate(env):
    mem, builder, walker, cr3 = env
    builder.map_page(cr3, 0xFFFFFFFF80000000, 0x200000)
    tr = walker.translate(cr3, 0xFFFFFFFF80000123)
    assert tr.paddr == 0x200123
    assert tr.level == 1
    assert tr.flags & PTE_PRESENT


def test_unmapped_address_faults(env):
    _, _, walker, cr3 = env
    with pytest.raises(PageFaultError):
        walker.translate(cr3, 0xFFFFFFFF80000000)


def test_map_range_contiguous(env):
    _, builder, walker, cr3 = env
    base = kaslr_slot_to_vaddr(3)
    builder.map_range(cr3, base, 0x400000, 10 * PAGE_SIZE)
    for i in range(10):
        assert walker.translate(cr3, base + i * PAGE_SIZE).paddr == 0x400000 + i * PAGE_SIZE
    assert not walker.is_mapped(cr3, base + 10 * PAGE_SIZE)


def test_nx_and_readonly_flags(env):
    _, builder, walker, cr3 = env
    builder.map_page(cr3, 0xFFFFFFFF80000000, 0x200000, writable=False, nx=True)
    tr = walker.translate(cr3, 0xFFFFFFFF80000000)
    assert not tr.flags & PTE_WRITABLE
    assert tr.flags & PTE_NX


def test_unmap_page(env):
    _, builder, walker, cr3 = env
    vaddr = kaslr_slot_to_vaddr(1)
    builder.map_page(cr3, vaddr, 0x300000)
    assert walker.is_mapped(cr3, vaddr)
    builder.unmap_page(cr3, vaddr)
    assert not walker.is_mapped(cr3, vaddr)


def test_unmap_absent_raises(env):
    _, builder, _, cr3 = env
    with pytest.raises(PageFaultError):
        builder.unmap_page(cr3, kaslr_slot_to_vaddr(2))


def test_misaligned_mapping_rejected(env):
    _, builder, _, cr3 = env
    with pytest.raises(ValueError):
        builder.map_page(cr3, 0xFFFFFFFF80000001, 0x200000)
    with pytest.raises(ValueError):
        builder.map_page(cr3, 0xFFFFFFFF80000000, 0x200001)


def test_iter_present_range_finds_islands(env):
    _, builder, walker, cr3 = env
    base_a = kaslr_slot_to_vaddr(5)
    base_b = kaslr_slot_to_vaddr(200)
    builder.map_range(cr3, base_a, 0x500000, 2 * PAGE_SIZE)
    builder.map_range(cr3, base_b, 0x600000, PAGE_SIZE)
    found = [
        vaddr
        for vaddr, _ in walker.iter_present_range(
            cr3, 0xFFFFFFFF80000000, 0xFFFFFFFF80000000 + (1 << 30)
        )
    ]
    assert found == [base_a, base_a + PAGE_SIZE, base_b]


def test_translation_shares_intermediate_tables(env):
    """Two pages in the same 2M region must share a PT page."""
    _, builder, _, cr3 = env
    before = len(builder.tables_allocated)
    builder.map_page(cr3, 0xFFFFFFFF80000000, 0x200000)
    mid = len(builder.tables_allocated)
    builder.map_page(cr3, 0xFFFFFFFF80001000, 0x201000)
    assert len(builder.tables_allocated) == mid  # no new tables
    assert mid - before == 3  # PDPT + PD + PT


def test_canonical_roundtrip():
    assert canonical(0xFFFF_8000_0000_0000 & ((1 << 48) - 1)) == 0xFFFF_8000_0000_0000
    assert canonical(0x0000_7FFF_FFFF_FFFF) == 0x7FFF_FFFF_FFFF
