"""Sparse physical memory, gpa->hva translation, cross-process access."""

import pytest

from repro.errors import MemoryError_, VmshError
from repro.host.ebpf import MemslotRecord
from repro.host.kernel import HostKernel
from repro.mem.physmem import PhysicalMemory
from repro.units import KiB, MiB, PAGE_SIZE
from repro.virtio.memio import GpaTranslator, RemoteProcessAccessor


def test_unwritten_memory_reads_zero():
    mem = PhysicalMemory(1 * MiB)
    assert mem.read(0, 16) == b"\x00" * 16
    assert mem.read(MiB - 8, 8) == b"\x00" * 8


def test_write_read_roundtrip():
    mem = PhysicalMemory(1 * MiB)
    mem.write(1234, b"hello world")
    assert mem.read(1234, 11) == b"hello world"


def test_cross_page_write():
    mem = PhysicalMemory(1 * MiB)
    data = bytes(range(256)) * 40  # 10240 bytes across 3+ pages
    mem.write(PAGE_SIZE - 100, data)
    assert mem.read(PAGE_SIZE - 100, len(data)) == data


def test_out_of_bounds_rejected():
    mem = PhysicalMemory(PAGE_SIZE)
    with pytest.raises(MemoryError_):
        mem.read(PAGE_SIZE - 1, 2)
    with pytest.raises(MemoryError_):
        mem.write(PAGE_SIZE, b"x")
    with pytest.raises(MemoryError_):
        mem.read(-1, 1)


def test_size_must_be_page_multiple():
    with pytest.raises(ValueError):
        PhysicalMemory(100)
    with pytest.raises(ValueError):
        PhysicalMemory(0)


def test_word_accessors_little_endian():
    mem = PhysicalMemory(PAGE_SIZE)
    mem.write_u64(0, 0x1122334455667788)
    assert mem.read(0, 8) == bytes.fromhex("8877665544332211")
    assert mem.read_u64(0) == 0x1122334455667788
    mem.write_u32(8, 0xDEADBEEF)
    assert mem.read_u32(8) == 0xDEADBEEF
    mem.write_u16(12, 0xCAFE)
    assert mem.read_u16(12) == 0xCAFE
    mem.write_i32(16, -12345)
    assert mem.read_i32(16) == -12345


def test_resident_pages_tracks_materialisation():
    mem = PhysicalMemory(1 * MiB)
    assert mem.resident_pages == 0
    mem.read(0, 4096)            # reads do not materialise
    assert mem.resident_pages == 0
    mem.write(0, b"x")
    mem.write(5 * PAGE_SIZE, b"y")
    assert mem.resident_pages == 2


def test_touched_ranges_coalesces():
    mem = PhysicalMemory(1 * MiB)
    mem.write(0, b"a")
    mem.write(PAGE_SIZE, b"b")
    mem.write(10 * PAGE_SIZE, b"c")
    ranges = list(mem.touched_ranges())
    assert ranges == [(0, 2 * PAGE_SIZE), (10 * PAGE_SIZE, 11 * PAGE_SIZE)]


# -- gpa -> hva translation --------------------------------------------------

def _slots(*triples):
    return [
        MemslotRecord(slot=i, gpa=gpa, size=size, hva=hva)
        for i, (gpa, size, hva) in enumerate(triples)
    ]


def test_translator_bisect_lookup():
    size = 64 * KiB
    slots = _slots(*((i * size, size, 0x100000 + i * MiB) for i in range(32)))
    translator = GpaTranslator(slots)
    for i in (0, 7, 31):
        gpa = i * size + 12
        assert translator.to_hva(gpa, 8) == 0x100000 + i * MiB + 12


def test_translator_splits_span_of_contiguous_slots():
    """Regression: a range crossing into the next gpa-contiguous memslot
    used to hard-error; it must split into per-slot hva runs instead."""
    slots = _slots((0, 64 * KiB, 0x10000), (64 * KiB, 64 * KiB, 0x90000))
    translator = GpaTranslator(slots)
    runs = translator.to_hva_iov(64 * KiB - 100, 300)
    assert runs == [(0x10000 + 64 * KiB - 100, 100), (0x90000, 200)]
    # The single-slot translation still refuses the span.
    with pytest.raises(VmshError, match="single"):
        translator.to_hva(64 * KiB - 100, 300)


def test_translator_genuine_hole_raises():
    slots = _slots((0, 64 * KiB, 0x10000), (1 * MiB, 64 * KiB, 0x90000))
    translator = GpaTranslator(slots)
    with pytest.raises(VmshError, match="not covered"):
        translator.to_hva_iov(64 * KiB - 8, 16)
    # An access entirely inside either slot is unaffected.
    assert translator.to_hva_iov(1 * MiB, 16) == [(0x90000, 16)]


# -- remote access across memslots -------------------------------------------

def _remote_env(slot_layout):
    """A vmsh + hypervisor process pair with one mmap per (gpa, size)."""
    host = HostKernel()
    vmsh = host.spawn_process("vmsh")
    hv = host.spawn_process("hypervisor")
    records = []
    for i, (gpa, size) in enumerate(slot_layout):
        hva = host.syscall(hv.main_thread, "mmap", size, f"guest-ram-{i}")
        records.append(MemslotRecord(slot=i, gpa=gpa, size=size, hva=hva))
    accessor = RemoteProcessAccessor(
        host, vmsh.main_thread, hv.pid, GpaTranslator(records)
    )
    return host, hv, records, accessor


def test_remote_access_spans_contiguous_memslots():
    size = 64 * KiB
    host, hv, records, accessor = _remote_env([(0, size), (size, size)])
    payload = bytes(range(256)) * 2
    accessor.write(size - 256, payload)
    # Each half landed in the right mapping.
    space = host.processes[hv.pid].address_space
    assert space.read(records[0].hva + size - 256, 256) == payload[:256]
    assert space.read(records[1].hva, 256) == payload[256:]
    assert accessor.read(size - 256, 512) == payload


def test_remote_access_hole_still_raises():
    size = 64 * KiB
    host, hv, records, accessor = _remote_env([(0, size), (4 * size, size)])
    with pytest.raises(VmshError, match="not covered"):
        accessor.read(size - 8, 16)
    with pytest.raises(VmshError, match="not covered"):
        accessor.write(size - 8, b"x" * 16)


def test_remote_vectored_batches_into_one_syscall():
    host, hv, records, accessor = _remote_env([(0, 1 * MiB)])
    iov = [(page * PAGE_SIZE, PAGE_SIZE) for page in range(0, 64, 2)]
    before = host.costs.count("procvm_copy")
    data = accessor.read_vectored(iov)
    assert len(data) == 32 * PAGE_SIZE
    assert host.costs.count("procvm_copy") == before + 1
    assert accessor.stats.calls == 1
    assert accessor.stats.segments == 32
    assert accessor.stats.segments_coalesced == 31
