"""Sparse physical memory."""

import pytest

from repro.errors import MemoryError_
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB, PAGE_SIZE


def test_unwritten_memory_reads_zero():
    mem = PhysicalMemory(1 * MiB)
    assert mem.read(0, 16) == b"\x00" * 16
    assert mem.read(MiB - 8, 8) == b"\x00" * 8


def test_write_read_roundtrip():
    mem = PhysicalMemory(1 * MiB)
    mem.write(1234, b"hello world")
    assert mem.read(1234, 11) == b"hello world"


def test_cross_page_write():
    mem = PhysicalMemory(1 * MiB)
    data = bytes(range(256)) * 40  # 10240 bytes across 3+ pages
    mem.write(PAGE_SIZE - 100, data)
    assert mem.read(PAGE_SIZE - 100, len(data)) == data


def test_out_of_bounds_rejected():
    mem = PhysicalMemory(PAGE_SIZE)
    with pytest.raises(MemoryError_):
        mem.read(PAGE_SIZE - 1, 2)
    with pytest.raises(MemoryError_):
        mem.write(PAGE_SIZE, b"x")
    with pytest.raises(MemoryError_):
        mem.read(-1, 1)


def test_size_must_be_page_multiple():
    with pytest.raises(ValueError):
        PhysicalMemory(100)
    with pytest.raises(ValueError):
        PhysicalMemory(0)


def test_word_accessors_little_endian():
    mem = PhysicalMemory(PAGE_SIZE)
    mem.write_u64(0, 0x1122334455667788)
    assert mem.read(0, 8) == bytes.fromhex("8877665544332211")
    assert mem.read_u64(0) == 0x1122334455667788
    mem.write_u32(8, 0xDEADBEEF)
    assert mem.read_u32(8) == 0xDEADBEEF
    mem.write_u16(12, 0xCAFE)
    assert mem.read_u16(12) == 0xCAFE
    mem.write_i32(16, -12345)
    assert mem.read_i32(16) == -12345


def test_resident_pages_tracks_materialisation():
    mem = PhysicalMemory(1 * MiB)
    assert mem.resident_pages == 0
    mem.read(0, 4096)            # reads do not materialise
    assert mem.resident_pages == 0
    mem.write(0, b"x")
    mem.write(5 * PAGE_SIZE, b"y")
    assert mem.resident_pages == 2


def test_touched_ranges_coalesces():
    mem = PhysicalMemory(1 * MiB)
    mem.write(0, b"a")
    mem.write(PAGE_SIZE, b"b")
    mem.write(10 * PAGE_SIZE, b"c")
    ranges = list(mem.touched_ranges())
    assert ranges == [(0, 2 * PAGE_SIZE), (10 * PAGE_SIZE, 11 * PAGE_SIZE)]
