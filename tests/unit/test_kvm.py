"""KVM layer: memslots, vcpus, irqfd, ioeventfd, ioregionfd, MMIO."""

import pytest

from repro.errors import InvalidGpaError, KvmError, MemslotOverlapError
from repro.host.kernel import HostKernel
from repro.kvm.api import KvmSystem, VmFd
from repro.kvm.exits import MmioExit
from repro.kvm.memslots import MemslotTable
from repro.units import MiB


@pytest.fixture()
def setup():
    host = HostKernel()
    hv = host.spawn_process("vmm")
    kvm = KvmSystem(host)
    kvm_fd = hv.fds.install(kvm)
    vm_fd = host.syscall(hv.main_thread, "ioctl", kvm_fd, "KVM_CREATE_VM")
    vm = hv.fds.get(vm_fd)
    hva = host.syscall(hv.main_thread, "mmap", 32 * MiB, "guest-ram")
    host.syscall(
        hv.main_thread, "ioctl", vm_fd, "KVM_SET_USER_MEMORY_REGION",
        {"slot": 0, "gpa": 0, "size": 32 * MiB, "hva": hva},
    )
    return host, hv, vm, vm_fd


# -- memslot table ------------------------------------------------------------

def test_memslot_overlap_rejected():
    table = MemslotTable()
    table.set_region(0, 0, 1 * MiB, 0x1000)
    with pytest.raises(MemslotOverlapError):
        table.set_region(1, 512 * 1024, 1 * MiB, 0x2000)


def test_memslot_replace_same_slot():
    table = MemslotTable()
    table.set_region(0, 0, 1 * MiB, 0x1000)
    table.set_region(0, 0, 2 * MiB, 0x9000)
    assert table.lookup(1 * MiB).hva == 0x9000


def test_memslot_delete_with_zero_size():
    table = MemslotTable()
    table.set_region(0, 0, 1 * MiB, 0x1000)
    table.set_region(0, 0, 0, 0)
    assert len(table) == 0


def test_memslot_lookup_miss():
    table = MemslotTable()
    table.set_region(0, 0, 1 * MiB, 0)
    with pytest.raises(InvalidGpaError):
        table.lookup(2 * MiB)
    assert table.try_lookup(2 * MiB) is None


def test_memslot_free_slot_id():
    table = MemslotTable()
    table.set_region(0, 0, 1 * MiB, 0)
    table.set_region(1, 2 * MiB, 1 * MiB, 0x100000)
    assert table.free_slot_id() == 2
    assert table.highest_gpa() == 3 * MiB


# -- guest memory through memslots ------------------------------------------------

def test_guest_memory_roundtrip(setup):
    _, _, vm, _ = setup
    mem = vm.guest_memory()
    mem.write(0x5000, b"guest bytes")
    assert mem.read(0x5000, 11) == b"guest bytes"
    mem.write_u64(0x6000, 0x1234)
    assert mem.read_u64(0x6000) == 0x1234


def test_guest_memory_visible_in_hypervisor_va(setup):
    """The property VMSH depends on: guest RAM == hypervisor mapping."""
    _, hv, vm, _ = setup
    mem = vm.guest_memory()
    mem.write(0x7000, b"shared")
    mapping = next(m for m in hv.address_space.mappings() if m.name == "guest-ram")
    assert hv.address_space.read(mapping.start + 0x7000, 6) == b"shared"


# -- vcpus -------------------------------------------------------------------------

def test_vcpu_creation_and_registers(setup):
    host, hv, vm, vm_fd = setup
    vcpu_fd = host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CREATE_VCPU")
    regs = host.syscall(hv.main_thread, "ioctl", vcpu_fd, "KVM_GET_REGS")
    assert regs["rip"] == 0
    host.syscall(hv.main_thread, "ioctl", vcpu_fd, "KVM_SET_REGS", {"rip": 0xFF})
    assert host.syscall(hv.main_thread, "ioctl", vcpu_fd, "KVM_GET_REGS")["rip"] == 0xFF


def test_vcpu_sregs_cr3(setup):
    host, hv, vm, vm_fd = setup
    vcpu_fd = host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CREATE_VCPU")
    host.syscall(hv.main_thread, "ioctl", vcpu_fd, "KVM_SET_SREGS", {"cr3": 0x100000})
    assert host.syscall(hv.main_thread, "ioctl", vcpu_fd, "KVM_GET_SREGS")["cr3"] == 0x100000


def test_vcpu_rejects_unknown_register(setup):
    host, hv, _, vm_fd = setup
    vcpu_fd = host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CREATE_VCPU")
    with pytest.raises(KvmError):
        host.syscall(hv.main_thread, "ioctl", vcpu_fd, "KVM_SET_REGS", {"xyz": 1})


# -- interrupts ----------------------------------------------------------------------

def test_irqfd_routes_to_guest(setup):
    host, hv, vm, vm_fd = setup
    received = []
    vm.guest_irq_sink = received.append
    efd_fd = host.syscall(hv.main_thread, "eventfd2")
    host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_IRQFD",
                 {"gsi": 42, "eventfd": efd_fd})
    host.syscall(hv.main_thread, "write", efd_fd)
    assert received == [42]
    assert host.costs.count("irq_inject") == 1


def test_irqfd_rejected_without_gsi_routing(setup):
    """Cloud Hypervisor's MSI-X-only model (Table 1)."""
    host, hv, vm, vm_fd = setup
    vm.gsi_routing_supported = False
    efd_fd = host.syscall(hv.main_thread, "eventfd2")
    with pytest.raises(KvmError, match="MSI-X"):
        host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_IRQFD",
                     {"gsi": 42, "eventfd": efd_fd})


# -- MMIO dispatch ----------------------------------------------------------------------

def _vcpu_with_handler(setup):
    host, hv, vm, vm_fd = setup
    vcpu_fd = host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CREATE_VCPU")
    vcpu = hv.fds.get(vcpu_fd)
    vcpu.run_thread = hv.spawn_thread("vcpu-run")
    log = []

    def handler(vcpu_, exit):
        log.append((exit.is_write, exit.addr, exit.data))
        if not exit.is_write:
            exit.data = 0xCAFE
        exit.handled = True

    vm.userspace_exit_handler = handler
    return host, vm, vcpu, log


def test_mmio_exit_reaches_hypervisor(setup):
    host, vm, vcpu, log = _vcpu_with_handler(setup)
    value = vm.mmio_access(vcpu, False, 0xD0000000, 4)
    assert value == 0xCAFE
    vm.mmio_access(vcpu, True, 0xD0000004, 4, 7)
    assert log == [(False, 0xD0000000, 0), (True, 0xD0000004, 7)]
    assert host.costs.count("vmexit") == 2


def test_unhandled_mmio_raises(setup):
    host, hv, vm, vm_fd = setup
    vcpu_fd = host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CREATE_VCPU")
    vcpu = hv.fds.get(vcpu_fd)
    with pytest.raises(KvmError, match="no userspace exit handler"):
        vm.mmio_access(vcpu, True, 0xD0000000, 4, 1)


def test_ioeventfd_bypasses_hypervisor(setup):
    host, vm, vcpu, log = _vcpu_with_handler(setup)
    hv = vm.owner
    efd_fd = host.syscall(hv.main_thread, "eventfd2")
    vm.ioctl("KVM_IOEVENTFD", {"addr": 0xD0000050, "eventfd": efd_fd}, hv.main_thread)
    vm.mmio_access(vcpu, True, 0xD0000050, 4, 1)
    assert log == []                      # hypervisor never woken
    assert hv.fds.get(efd_fd).counter == 1


def test_ioregionfd_routes_over_socket(setup):
    host, vm, vcpu, log = _vcpu_with_handler(setup)
    hv = vm.owner
    sock_a_fd, sock_b_fd = host.syscall(hv.main_thread, "socketpair")
    vm.ioctl(
        "KVM_SET_IOREGION",
        {"gpa": 0xE0000000, "size": 0x1000, "socket": sock_a_fd},
        hv.main_thread,
    )
    sock_b = hv.fds.get(sock_b_fd)
    seen = []

    def device(msg):
        seen.append(msg)
        if msg["type"] == "read":
            sock_b.send({"data": 0xBEEF})

    sock_b.on_message(device)
    assert vm.mmio_access(vcpu, False, 0xE0000008, 4) == 0xBEEF
    vm.mmio_access(vcpu, True, 0xE0000008, 4, 5)
    assert [m["type"] for m in seen] == ["read", "write"]
    assert log == []                      # hypervisor untouched
    assert host.costs.count("ioregionfd_msg") == 2


def test_ioregionfd_unsupported_kernel(setup):
    host, hv, vm, vm_fd = setup
    vm.system.ioregionfd_supported = False
    sock_a_fd, _ = host.syscall(hv.main_thread, "socketpair")
    with pytest.raises(KvmError, match="not supported"):
        vm.ioctl("KVM_SET_IOREGION",
                 {"gpa": 0xE0000000, "size": 0x1000, "socket": sock_a_fd},
                 hv.main_thread)


def test_check_extension(setup):
    host, hv, vm, vm_fd = setup
    assert host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CHECK_EXTENSION",
                        "KVM_CAP_IOREGIONFD") is True
    vm.system.ioregionfd_supported = False
    assert host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CHECK_EXTENSION",
                        "KVM_CAP_IOREGIONFD") is False


def test_wrap_hook_steals_exit(setup):
    """A ptrace syscall hook on the vcpu thread sees the kvm_run page
    before the hypervisor and may consume the exit (wrap_syscall)."""
    host, vm, vcpu, log = _vcpu_with_handler(setup)

    def hook(thread, name, phase):
        run = vcpu.mmap_run_page()
        if phase == "exit" and run.exit_reason == "mmio" and run.mmio is not None:
            if not run.mmio.handled and run.mmio.addr >= 0xE0000000:
                run.mmio.data = 0x77
                run.mmio.handled = True
                run.mmio.handled_by = "vmsh"

    host.install_syscall_hook(vcpu.run_thread, hook)
    assert vm.mmio_access(vcpu, False, 0xE0000000, 4) == 0x77
    assert log == []                        # stolen before the VMM saw it
    assert vm.mmio_access(vcpu, False, 0xD0000000, 4) == 0xCAFE
    assert log != []                        # others still pass through
    assert host.costs.count("ptrace_stop") >= 4
