"""virtio-mmio device model, virtio-blk, virtio-console end to end."""

import pytest

from repro.errors import VirtioError
from repro.guestos.blockcore import MemoryBlockDevice
from repro.host.files import HostFile
from repro.host.kernel import HostKernel
from repro.kvm.api import KvmSystem
from repro.testbed import Testbed
from repro.units import MiB, SECTOR_SIZE
from repro.virtio import constants as C
from repro.virtio.blk import (
    GuestVirtioBlkDisk,
    MappedImageBackend,
    RawDiskBackend,
    VirtioBlkDevice,
)
from repro.virtio.console import Pts
from repro.virtio.memio import InProcessAccessor
from repro.virtio.mmio import GuestVirtioTransport


@pytest.fixture()
def guest_env():
    """A booted QEMU guest with one virtio-blk disk."""
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition(32 * MiB))
    return tb, hv, hv.guest


def test_mmio_probe_magic_and_id(guest_env):
    tb, hv, guest = guest_env
    base = sorted(hv._mmio_devices)[0]
    transport = GuestVirtioTransport(guest, base, 32)
    assert transport.read32(C.REG_MAGIC) == C.MMIO_MAGIC
    assert transport.read32(C.REG_VERSION) == C.MMIO_VERSION
    assert transport.probe() == C.DEVICE_ID_BLOCK


def test_probe_of_empty_window_returns_none(guest_env):
    tb, hv, guest = guest_env
    transport = GuestVirtioTransport(guest, 0xDEAD0000, 33)
    assert transport.probe() is None


def test_blk_capacity_config(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    assert disk.capacity_sectors == (32 * MiB) // SECTOR_SIZE


def test_blk_sector_roundtrip(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    payload = bytes(range(256)) * 4  # 1024 bytes = 2 sectors
    disk.write_sectors(100, payload)
    assert disk.read_sectors(100, 2) == payload


def test_blk_large_transfer_chunks(guest_env):
    """Requests above the DMA pool size split transparently."""
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    payload = b"\x5c" * (2 * MiB)
    disk.write_sectors(0, payload)
    assert disk.read_sectors(0, len(payload) // SECTOR_SIZE) == payload


def test_blk_flush(guest_env):
    tb, hv, guest = guest_env
    guest.block_devices["vda"].flush()  # must complete without error


def test_blk_out_of_range_rejected(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    with pytest.raises(Exception):
        disk.read_sectors(disk.capacity_sectors, 1)


def test_device_exit_counts(guest_env):
    """One IO = notify exit + interrupt-ack register traffic."""
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    tb.costs.reset_counters()
    disk.read_sectors(0, 8)
    assert tb.costs.count("vmexit") >= 1
    assert tb.costs.count("irq_inject") == 1


def test_mapped_image_backend():
    from repro.sim.clock import Clock
    from repro.sim.costs import CostModel

    costs = CostModel(Clock())
    backend = MappedImageBackend(costs, b"\x00" * (1 * MiB))
    backend.write(4, b"\xaa" * 512)
    assert backend.read(4, 1) == b"\xaa" * 512
    assert backend.snapshot()[4 * 512 : 4 * 512 + 8] == b"\xaa" * 8


def test_mapped_image_backend_readonly():
    from repro.sim.clock import Clock
    from repro.sim.costs import CostModel

    backend = MappedImageBackend(CostModel(Clock()), b"\x00" * 4096, writable=False)
    with pytest.raises(VirtioError):
        backend.write(0, b"\x01" * 512)


def test_pts_buffers_until_device_connects():
    pts = Pts()
    pts.user_write(b"early\n")
    got = []
    pts.connect_device(got.append)
    assert got == [b"early\n"]
    pts.user_write(b"later\n")
    assert got == [b"early\n", b"later\n"]


def test_vmsh_console_roundtrip():
    """Full console path: pts -> virtqueues -> shell -> pts."""
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    result = session.console.run_command("echo console-works")
    assert result.output == "console-works"
    assert result.latency_ns > 0


def test_console_multiple_commands_ordered():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    outputs = [session.console.run_command(f"echo line{i}").output for i in range(5)]
    assert outputs == [f"line{i}" for i in range(5)]
