"""VFS: path resolution, mounts, namespaces, handles."""

import pytest

from repro.errors import VfsError
from repro.guestos.fs import Filesystem
from repro.guestos.vfs import (
    Mount,
    MountNamespace,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    Vfs,
    normalize,
)


@pytest.fixture()
def vfs():
    ns = MountNamespace()
    v = Vfs(ns)
    v.mount(Filesystem("ext4", label="root"), "/")
    return v


def test_normalize():
    assert normalize("//a///b/./c") == "/a/b/c"
    assert normalize("/") == "/"
    with pytest.raises(VfsError):
        normalize("relative/path")


def test_write_read_file(vfs):
    vfs.write_file("/hello.txt", b"content")
    assert vfs.read_file("/hello.txt") == b"content"


def test_makedirs_and_exists(vfs):
    vfs.makedirs("/a/b/c")
    assert vfs.isdir("/a/b/c")
    vfs.makedirs("/a/b/c")  # idempotent
    assert vfs.exists("/a/b")
    assert not vfs.exists("/a/x")


def test_open_flags(vfs):
    vfs.write_file("/f", b"12345")
    with pytest.raises(VfsError, match="EEXIST"):
        vfs.open("/f", {O_CREAT, O_EXCL, O_RDWR})
    handle = vfs.open("/f", {O_RDWR, O_TRUNC})
    assert handle.fs.inode(handle.ino).size == 0
    vfs.close(handle)


def test_append_mode(vfs):
    vfs.write_file("/log", b"one")
    handle = vfs.open("/log", {O_RDWR, O_APPEND})
    vfs.write(handle, b"-two")
    vfs.close(handle)
    assert vfs.read_file("/log") == b"one-two"


def test_sequential_read_via_handle(vfs):
    vfs.write_file("/f", b"abcdef")
    handle = vfs.open("/f")
    assert vfs.read(handle, 3) == b"abc"
    assert vfs.read(handle, 3) == b"def"
    assert vfs.read(handle, 3) == b""
    vfs.close(handle)


def test_symlink_resolution(vfs):
    vfs.makedirs("/real/dir")
    vfs.write_file("/real/dir/file", b"x")
    vfs.symlink("/real/dir", "/linkdir")
    assert vfs.read_file("/linkdir/file") == b"x"
    assert vfs.readlink("/linkdir") == "/real/dir"
    assert vfs.stat("/linkdir", follow=False)["mode"] & 0o120000


def test_relative_symlink(vfs):
    vfs.makedirs("/d")
    vfs.write_file("/d/target", b"rel")
    vfs.symlink("target", "/d/link")
    assert vfs.read_file("/d/link") == b"rel"


def test_symlink_loop_detected(vfs):
    vfs.symlink("/b", "/a")
    vfs.symlink("/a", "/b")
    with pytest.raises(VfsError, match="ELOOP"):
        vfs.read_file("/a")


def test_dotdot_resolution(vfs):
    vfs.makedirs("/x/y")
    vfs.write_file("/x/f", b"up")
    assert vfs.read_file("/x/y/../f") == b"up"
    assert vfs.read_file("/x/../x/f") == b"up"
    # .. at root stays at root
    assert vfs.isdir("/../../..")


def test_mount_shadows_directory(vfs):
    vfs.makedirs("/mnt/data")
    vfs.write_file("/mnt/data/original", b"below")
    overlay_fs = Filesystem("tmpfs", label="overlay")
    vfs.mount(overlay_fs, "/mnt/data")
    assert not vfs.exists("/mnt/data/original")
    vfs.write_file("/mnt/data/new", b"above")
    vfs.umount("/mnt/data")
    assert vfs.read_file("/mnt/data/original") == b"below"
    assert not vfs.exists("/mnt/data/new")


def test_mount_requires_directory(vfs):
    vfs.write_file("/file", b"")
    with pytest.raises(VfsError, match="ENOTDIR"):
        vfs.mount(Filesystem("tmpfs"), "/file")


def test_move_mount(vfs):
    vfs.makedirs("/from")
    vfs.makedirs("/to")
    extra = Filesystem("tmpfs", label="mv")
    vfs.mount(extra, "/from")
    vfs.write_file("/from/marker", b"m")
    vfs.move_mount("/from", "/to")
    assert vfs.read_file("/to/marker") == b"m"
    assert not vfs.exists("/from/marker")


def test_namespace_clone_isolation(vfs):
    """CLONE_NEWNS: mounts in the clone do not leak to the parent."""
    clone = vfs.ns.clone()
    cloned_vfs = Vfs(clone)
    cloned_vfs.makedirs("/only-ns2-mnt")
    vfs.makedirs("/only-ns2-mnt")  # same underlying fs!
    extra = Filesystem("tmpfs", label="private")
    cloned_vfs.mount(extra, "/only-ns2-mnt")
    cloned_vfs.write_file("/only-ns2-mnt/private", b"p")
    # Original namespace sees the underlying (empty) directory.
    assert not vfs.exists("/only-ns2-mnt/private")
    assert cloned_vfs.read_file("/only-ns2-mnt/private") == b"p"


def test_rename_cross_mount_exdev(vfs):
    vfs.makedirs("/other")
    vfs.mount(Filesystem("tmpfs"), "/other")
    vfs.write_file("/f", b"x")
    with pytest.raises(VfsError, match="EXDEV"):
        vfs.rename("/f", "/other/f")


def test_rmtree(vfs):
    vfs.makedirs("/tree/a/b")
    vfs.write_file("/tree/f1", b"1")
    vfs.write_file("/tree/a/f2", b"2")
    vfs.symlink("/tree/f1", "/tree/a/b/link")
    vfs.rmtree("/tree")
    assert not vfs.exists("/tree")


def test_rmdir_busy_mountpoint(vfs):
    vfs.makedirs("/busy")
    vfs.mount(Filesystem("tmpfs"), "/busy")
    with pytest.raises(VfsError, match="EBUSY"):
        vfs.rmdir("/busy")


def test_stat_fields(vfs):
    vfs.write_file("/s", b"123456")
    stat = vfs.stat("/s")
    assert stat["size"] == 6
    assert stat["nlink"] == 1
    assert stat["mode"] & 0o100000
    vfs.chmod("/s", 0o600)
    assert vfs.stat("/s")["mode"] & 0o7777 == 0o600
    vfs.chown("/s", 1000, 1000)
    assert vfs.stat("/s")["uid"] == 1000


def test_lseek_whences(vfs):
    vfs.write_file("/f", b"0123456789")
    handle = vfs.open("/f")
    assert vfs.lseek(handle, 4, "set") == 4
    assert vfs.lseek(handle, 2, "cur") == 6
    assert vfs.lseek(handle, -3, "end") == 7
    with pytest.raises(VfsError):
        vfs.lseek(handle, -100, "set")
    with pytest.raises(VfsError):
        vfs.lseek(handle, 0, "bogus")


def test_rename_into_own_subtree_rejected(vfs):
    """Regression: moving a directory under itself must fail EINVAL."""
    vfs.makedirs("/a/b")
    with pytest.raises(VfsError, match="EINVAL"):
        vfs.rename("/a", "/a/b/c")
    with pytest.raises(VfsError, match="EINVAL"):
        vfs.rename("/a", "/a")
    assert vfs.isdir("/a/b")                # tree untouched
