"""Use-case units: rescue, scanner, serverless (E8-E10 components)."""

import pytest

from repro.errors import VmshError
from repro.testbed import Testbed
from repro.units import SEC
from repro.usecases.rescue import RescueService, verify_password_reset
from repro.usecases.scanner import (
    DEFAULT_SECDB,
    SecurityScanner,
    alpine_installed_db,
    parse_installed_db,
    version_less,
)
from repro.usecases.serverless import ServerlessDebugger, VHivePlatform


# -- scanner helpers -------------------------------------------------------------

def test_installed_db_roundtrip():
    packages = {"openssl": "1.1.1k-r0", "musl": "1.2.2-r3"}
    assert parse_installed_db(alpine_installed_db(packages)) == packages


def test_version_comparison():
    assert version_less("1.1.1k-r0", "1.1.1l-r0")
    assert not version_less("1.1.1l-r0", "1.1.1l-r0")
    assert version_less("1.34.1-r2", "1.34.1-r3")
    assert not version_less("1.34.1-r5", "1.34.1-r3")
    assert version_less("1.2.1-r9", "1.2.2-r0")
    assert version_less("2.12.5-r0", "2.12.6-r0")


def test_match_flags_only_vulnerable():
    installed = {"openssl": "1.1.1k-r0", "busybox": "1.34.1-r5", "unknown-pkg": "1.0"}
    report = SecurityScanner.match(installed, DEFAULT_SECDB)
    assert report.packages_scanned == 3
    assert report.vulnerable_packages == ["openssl"]
    assert {v.cve for v in report.vulnerabilities} == {
        "CVE-2021-3711", "CVE-2021-3712",
    }


def test_scanner_on_non_alpine_guest_fails():
    tb = Testbed()
    hv = tb.launch_qemu()  # no apk database
    with pytest.raises(VmshError, match="apk"):
        SecurityScanner(tb.vmsh()).scan(hv)


# -- rescue ---------------------------------------------------------------------------

def test_rescue_resets_password_without_reboot():
    tb = Testbed()
    hv = tb.launch_qemu()
    boot_count_before = len(hv.guest.klog)
    report = RescueService(tb.vmsh()).reset_password(hv, "root", "s3cret")
    assert verify_password_reset(report, "root")
    # Same boot: klog grew (vmsh messages) but was never reset.
    assert len(hv.guest.klog) > boot_count_before
    assert any("booted" in line for line in hv.guest.klog[:3])


def test_rescue_unknown_user():
    tb = Testbed()
    hv = tb.launch_qemu()
    report = RescueService(tb.vmsh()).reset_password(hv, "ghost", "pw")
    assert "not found" in report.shell_output
    assert not verify_password_reset(report, "ghost")


# -- serverless -----------------------------------------------------------------------

def _platform():
    tb = Testbed()
    platform = VHivePlatform(tb)
    platform.deploy("resize", lambda p: {"ok": p["width"] * 2})
    return tb, platform


def test_invoke_success_and_logs():
    tb, platform = _platform()
    assert platform.invoke("resize", {"width": 4}) == {"ok": 8}
    assert any("invoke ok" in l.message for l in platform.logs)


def test_invoke_error_logged_not_raised():
    tb, platform = _platform()
    assert platform.invoke("resize", {"wrong": 1}) is None
    errors = [l for l in platform.logs if l.level == "ERROR"]
    assert len(errors) == 1
    assert "KeyError" in errors[0].message


def test_undeployed_function_rejected():
    tb, platform = _platform()
    with pytest.raises(VmshError):
        platform.invoke("nope", {})


def test_instances_are_reused_when_warm():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    platform.invoke("resize", {"width": 2})
    assert len(platform.live_instances()) == 1


def test_scale_down_after_idle():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    assert platform.scale_down() == []          # still warm
    tb.clock.advance(3 * SEC)
    assert len(platform.scale_down()) == 1
    assert platform.live_instances() == []


def test_debugger_requires_an_error():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    debugger = ServerlessDebugger(platform)
    with pytest.raises(VmshError, match="no lambda errors"):
        debugger.debug_shell()


def test_debug_shell_pins_against_scale_down():
    tb, platform = _platform()
    platform.invoke("resize", {"bad": 1})
    debugger = ServerlessDebugger(platform)
    session = debugger.debug_shell()
    tb.clock.advance(10 * SEC)
    assert platform.scale_down() == []          # pinned
    assert not session.instance.terminated
    out = session.session.console.run_command("cat /etc/motd")
    assert "debug shell" in out.output
    session.close()
    assert len(platform.scale_down()) == 1      # released


def test_debug_shell_too_late_after_scale_down():
    tb, platform = _platform()
    platform.invoke("resize", {"bad": 1})
    tb.clock.advance(10 * SEC)
    platform.scale_down()
    with pytest.raises(VmshError, match="scaled down"):
        ServerlessDebugger(platform).debug_shell()


# -- warm vs cold invocation cost -------------------------------------------------


def test_cold_invoke_charges_cold_start():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    assert tb.costs.count("faas_cold_start") == 1
    assert tb.costs.count("faas_route") == 1


def test_warm_invoke_skips_cold_start():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    t_warm = tb.clock.now
    platform.invoke("resize", {"width": 2})
    warm_latency = tb.clock.now - t_warm
    assert tb.costs.count("faas_cold_start") == 1   # only the first
    assert tb.costs.count("faas_route") == 2
    # A warm hit is routing-only — far cheaper than the cold path.
    assert warm_latency < tb.costs.p.faas_cold_start_ns
    assert warm_latency >= tb.costs.p.faas_route_ns


def test_cold_invoke_is_slower_than_warm():
    tb, platform = _platform()
    t0 = tb.clock.now
    platform.invoke("resize", {"width": 1})
    cold_latency = tb.clock.now - t0
    t1 = tb.clock.now
    platform.invoke("resize", {"width": 2})
    warm_latency = tb.clock.now - t1
    assert cold_latency > warm_latency
    assert cold_latency >= tb.costs.p.faas_cold_start_ns


def test_scale_down_then_invoke_pays_cold_start_again():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    tb.clock.advance(3 * SEC)
    platform.scale_down()
    platform.invoke("resize", {"width": 2})
    assert tb.costs.count("faas_cold_start") == 2


# -- scheduler-driven fleet -------------------------------------------------------


def test_invoke_task_matches_sync_costs():
    tb, platform = _platform()
    results = []

    def storm():
        first = yield from platform.invoke_task("resize", {"width": 1})
        results.append(first)
        second = yield from platform.invoke_task("resize", {"width": 2})
        results.append(second)

    tb.scheduler.spawn(storm())
    tb.scheduler.run_until_idle()
    assert results == [{"ok": 2}, {"ok": 4}]
    assert tb.costs.count("faas_cold_start") == 1
    assert tb.costs.count("faas_route") == 2


def test_autoscaler_timer_scales_down_idle_instance():
    tb, platform = _platform()
    platform.invoke("resize", {"width": 1})
    platform.start_autoscaler(tb.scheduler, period_ns=SEC)
    tb.scheduler.run_until(tb.clock.now + 5 * SEC)
    assert platform.live_instances() == []
    assert any("scaled down" in l.message for l in platform.logs)
    platform.stop_autoscaler()


def test_autoscaler_rejects_double_start():
    tb, platform = _platform()
    platform.start_autoscaler(tb.scheduler)
    with pytest.raises(VmshError, match="already running"):
        platform.start_autoscaler(tb.scheduler)
    platform.stop_autoscaler()
    platform.start_autoscaler(tb.scheduler)  # restart after stop is fine
    platform.stop_autoscaler()


def test_debug_shell_task_races_autoscaler_and_wins():
    tb, platform = _platform()
    platform.invoke("resize", {"bad": 1})
    platform.start_autoscaler(tb.scheduler, period_ns=SEC)
    debugger = ServerlessDebugger(platform)
    task = tb.scheduler.spawn(debugger.debug_shell_task(), label="debug-shell")
    # Let the attach interleave with several scale-down ticks.
    tb.scheduler.run_until(tb.clock.now + 10 * SEC)
    (session,) = tb.scheduler.run(task)
    assert not session.instance.terminated      # pinned before first yield
    out = session.session.console.run_command("cat /etc/motd")
    assert "debug shell" in out.output
    platform.stop_autoscaler()
    session.close()
