"""Host kernel syscalls: dispatch, seccomp, process_vm, fd passing."""

import pytest

from repro.errors import (
    HostError,
    NoSuchProcessError,
    PermissionDeniedError,
    SeccompViolationError,
)
from repro.host.files import HostFile
from repro.host.kernel import HostKernel
from repro.host.seccomp import SeccompFilter
from repro.units import MiB


@pytest.fixture()
def host():
    return HostKernel()


def test_unknown_syscall_raises(host):
    p = host.spawn_process("p")
    with pytest.raises(HostError, match="unimplemented"):
        host.syscall(p.main_thread, "does_not_exist")


def test_mmap_munmap_syscalls(host):
    p = host.spawn_process("p")
    addr = host.syscall(p.main_thread, "mmap", 1 * MiB)
    assert addr > 0
    assert host.syscall(p.main_thread, "munmap", addr) == 0


def test_syscall_charges_time(host):
    p = host.spawn_process("p")
    host.syscall(p.main_thread, "mmap", 4096)
    assert host.clock.now >= host.costs.p.syscall_ns


def test_seccomp_blocks_filtered_syscall(host):
    p = host.spawn_process("p")
    p.main_thread.seccomp_filter = SeccompFilter.allowlist("strict", {"read"})
    with pytest.raises(SeccompViolationError):
        host.syscall(p.main_thread, "mmap", 4096)


def test_seccomp_allows_whitelisted(host):
    p = host.spawn_process("p")
    p.main_thread.seccomp_filter = SeccompFilter.allowlist("ok", {"mmap"})
    assert host.syscall(p.main_thread, "mmap", 4096) > 0


def test_process_vm_readv_writev(host):
    reader = host.spawn_process("reader")
    target = host.spawn_process("target")
    addr = host.syscall(target.main_thread, "mmap", 4096)
    host.syscall(reader.main_thread, "process_vm_writev", target.pid, addr, b"xyz")
    data = host.syscall(reader.main_thread, "process_vm_readv", target.pid, addr, 3)
    assert data == b"xyz"
    assert host.costs.count("procvm_copy") == 2


def test_process_vm_requires_privilege(host):
    reader = host.spawn_process("reader", uid=1000)
    reader.capabilities.clear()
    target = host.spawn_process("target", uid=0)
    addr = host.syscall(target.main_thread, "mmap", 4096)
    with pytest.raises(PermissionDeniedError):
        host.syscall(reader.main_thread, "process_vm_readv", target.pid, addr, 1)


def test_process_vm_on_dead_process(host):
    reader = host.spawn_process("reader")
    target = host.spawn_process("target")
    host.exit_process(target.pid)
    with pytest.raises(NoSuchProcessError):
        host.syscall(reader.main_thread, "process_vm_readv", target.pid, 0, 1)


def test_eventfd_write_signals(host):
    p = host.spawn_process("p")
    fd = host.syscall(p.main_thread, "eventfd2")
    host.syscall(p.main_thread, "write", fd)
    assert host.syscall(p.main_thread, "read", fd) == 1


def test_sendmsg_recvmsg_fd_passing(host):
    """SCM_RIGHTS: the mechanism VMSH uses to extract fds (§5)."""
    hv = host.spawn_process("hypervisor")
    vmsh = host.spawn_process("vmsh")
    sock_a, sock_b = host.syscall(hv.main_thread, "socketpair")
    efd_in_hv = host.syscall(hv.main_thread, "eventfd2")
    # VMSH adopts the peer end (connected unix socket).
    vmsh_fd = vmsh.fds.install(hv.fds.get(sock_b))
    host.syscall(hv.main_thread, "sendmsg", sock_a, "take-this", [efd_in_hv])
    payload, fds = host.syscall(vmsh.main_thread, "recvmsg", vmsh_fd)
    assert payload == "take-this"
    assert len(fds) == 1
    # Both fd tables reference the SAME eventfd object.
    assert vmsh.fds.get(fds[0]) is hv.fds.get(efd_in_hv)


def test_pread_pwrite_on_host_file(host):
    p = host.spawn_process("p")
    hf = HostFile("/tmp/disk.img", size=1 * MiB, costs=host.costs)
    fd = p.fds.install(hf)
    host.syscall(p.main_thread, "pwrite", fd, 100, b"disk-data")
    assert host.syscall(p.main_thread, "pread", fd, 100, 9) == b"disk-data"


def test_fsync_on_host_file(host):
    p = host.spawn_process("p")
    hf = HostFile("/tmp/disk.img", size=1 * MiB, costs=host.costs)
    fd = p.fds.install(hf)
    assert host.syscall(p.main_thread, "fsync", fd) == 0


def test_direct_host_file_charges_disk(host):
    p = host.spawn_process("p")
    hf = HostFile("/dev/nvme0n1p9", size=1 * MiB, costs=host.costs, direct=True)
    fd = p.fds.install(hf)
    host.syscall(p.main_thread, "pread", fd, 0, 4096)
    assert host.costs.count("disk_io") == 1


def test_ebpf_attach_requires_cap(host):
    p = host.spawn_process("p")
    p.drop_capability("CAP_BPF")
    with pytest.raises(PermissionDeniedError):
        host.ebpf_attach("kvm_vm_ioctl", lambda **kw: None, p)


def test_ebpf_fire_reaches_programs(host):
    p = host.spawn_process("p")
    seen = []
    host.ebpf_attach("kvm_vm_ioctl", lambda **kw: seen.append(kw), p)
    host.ebpf_fire("kvm_vm_ioctl", vm="fake", request="X")
    assert seen == [{"vm": "fake", "request": "X"}]
