"""Guest kernel: boot layout, kernel functions, exec, panics."""

import pytest

from repro.errors import GuestError, GuestPanicError
from repro.guestos.kernel import GuestKernel
from repro.guestos.kfunctions import PosRef
from repro.guestos.loader import KERNEL_IMAGE_SIZE
from repro.guestos.version import KernelVersion
from repro.guestos.vfs import O_CREAT, O_RDWR
from repro.mem.layout import KERNEL_TEXT_BASE, KERNEL_TEXT_RANGE
from repro.testbed import Testbed


@pytest.fixture()
def guest():
    tb = Testbed()
    hv = tb.launch_qemu()
    return hv.guest


def test_boot_places_kernel_in_kaslr_range(guest):
    image = guest.image
    assert KERNEL_TEXT_BASE <= image.vbase < KERNEL_TEXT_BASE + KERNEL_TEXT_RANGE
    assert image.vbase % (2 * 1024 * 1024) == 0


def test_kaslr_differs_across_vms():
    tb = Testbed()
    bases = set()
    for _ in range(4):
        hv = tb.launch_qemu()
        bases.add(hv.guest.image.vbase)
    assert len(bases) > 1


def test_kernel_image_mapped_in_page_tables(guest):
    walker = guest.walker()
    tr = walker.translate(guest.cr3, guest.image.vbase)
    assert tr.paddr == guest.image.pbase
    end = guest.image.vbase + KERNEL_IMAGE_SIZE
    assert not walker.is_mapped(guest.cr3, end)


def test_banner_readable_at_symbol(guest):
    banner_vaddr = guest.image.symbols["linux_banner"]
    raw = guest.read_virt(banner_vaddr, 64)
    assert raw.startswith(b"Linux version 5.10.0")


def test_vcpu_parked_at_idle(guest):
    assert guest.boot_vcpu.regs["rip"] == guest.idle_vaddr
    assert guest.execute_at(guest.idle_vaddr, guest.boot_vcpu) == "idle"


def test_jump_to_garbage_panics(guest):
    with pytest.raises(GuestPanicError):
        guest.execute_at(guest.image.vbase + 0x123, guest.boot_vcpu)
    # The guest stays panicked afterwards.
    with pytest.raises(GuestPanicError):
        guest.execute_at(guest.idle_vaddr, guest.boot_vcpu)


def test_call_kfunc_by_address(guest):
    printk_addr = guest.image.symbols["printk"]
    guest.call_kfunc(printk_addr, "hello from test")
    assert "hello from test" in guest.klog


def test_call_nonfunction_address_panics(guest):
    with pytest.raises(GuestPanicError):
        guest.call_kfunc(guest.image.vbase + 0x999, "x")


def test_kernel_file_io_functions(guest):
    filp_open = guest.image.symbols["filp_open"]
    kernel_write = guest.image.symbols["kernel_write"]
    kernel_read = guest.image.symbols["kernel_read"]
    filp_close = guest.image.symbols["filp_close"]
    fno = guest.call_kfunc(filp_open, "/dev/testfile", frozenset({O_CREAT, O_RDWR}), 0o600)
    pos = PosRef(0)
    written = guest.call_kfunc(kernel_write, fno, b"kernel-data", pos)
    assert written == 11
    assert pos.value == 11
    data = guest.call_kfunc(kernel_read, fno, 11, PosRef(0))
    assert data == b"kernel-data"
    guest.call_kfunc(filp_close, fno)
    assert guest.kernel_vfs.read_file("/dev/testfile") == b"kernel-data"


def test_kernel_rw_abi_mismatch_panics(guest):
    """v5.10 expects (file, count, &pos); old-style args must panic."""
    filp_open = guest.image.symbols["filp_open"]
    kernel_read = guest.image.symbols["kernel_read"]
    fno = guest.call_kfunc(filp_open, "/dev/f2", frozenset({O_CREAT, O_RDWR}), 0o600)
    with pytest.raises(GuestPanicError, match="ABI mismatch"):
        guest.call_kfunc(kernel_read, fno, 0, 16)   # pos_second ordering


def test_old_kernel_rw_abi():
    tb = Testbed()
    hv = tb.launch_qemu(guest_version=KernelVersion(4, 4))
    guest = hv.guest
    filp_open = guest.image.symbols["filp_open"]
    kernel_write = guest.image.symbols["kernel_write"]
    fno = guest.call_kfunc(filp_open, "/dev/old", frozenset({O_CREAT, O_RDWR}), 0o600)
    # pos_second convention: (file, pos, buf)
    assert guest.call_kfunc(kernel_write, fno, 0, b"ok") == 2
    # New convention must panic on the old kernel.
    with pytest.raises(GuestPanicError, match="ABI mismatch"):
        guest.call_kfunc(kernel_write, fno, b"ok", PosRef(0))


def test_kthread_lifecycle(guest):
    ran = []
    guest.kthread_entries["test-entry"] = lambda: ran.append(1)
    create = guest.image.symbols["kthread_create_on_node"]
    wake = guest.image.symbols["wake_up_process"]
    pid = guest.call_kfunc(create, "test-entry", "test-kthread")
    assert ran == []                      # created but not started
    guest.call_kfunc(wake, pid)
    assert ran == [1]


def test_kthread_unknown_entry_panics(guest):
    create = guest.image.symbols["kthread_create_on_node"]
    with pytest.raises(GuestPanicError):
        guest.call_kfunc(create, "missing-entry", "x")


def test_exec_user_requires_simelf(guest):
    guest.kernel_vfs.write_file("/bin/not-exec", b"just data")
    with pytest.raises(GuestError, match="not executable"):
        guest.exec_user("/bin/not-exec")


def test_exec_user_spawns_shell(guest):
    pid = guest.exec_user("/bin/sh")
    process = guest.processes.get(pid)
    assert process.name == "shell"
    assert hasattr(process, "shell")


def test_double_boot_rejected(guest):
    with pytest.raises(GuestError):
        guest.boot()


def test_alloc_guest_pages_bump(guest):
    a = guest.alloc_guest_pages(2)
    b = guest.alloc_guest_pages(1)
    assert b == a + 2 * 4096
    with pytest.raises(GuestError):
        guest.alloc_guest_pages(0)


def test_irq_registration(guest):
    fired = []
    guest.register_irq(99, fired.append)
    guest.handle_irq(99)
    guest.handle_irq(100)  # unclaimed: ignored
    assert fired == [99]
