"""Queued virtio-blk submission, EVENT_IDX negotiation, and the
device's request-validation paths.

Covers the PR's driver-side contract: at iodepth N with EVENT_IDX the
window rings one doorbell and harvests under one coalesced interrupt;
without the feature (or at depth 1) every request kicks, exactly as
before.  Also pins the ``_service_request`` error semantics: a chain
that fails — whether on validation or midway through its copy loop —
reports only the status byte, never a pre-failure byte count.
"""

import struct

import pytest

from repro.errors import VirtioError
from repro.testbed import Testbed
from repro.units import MiB, SECTOR_SIZE
from repro.virtio import constants as C
from repro.virtio.blk import BLK_HEADER_SIZE


@pytest.fixture()
def guest_env():
    """A booted QEMU guest with one virtio-blk disk."""
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition(32 * MiB))
    return tb, hv, hv.guest


# -- feature negotiation -----------------------------------------------------


def test_qemu_negotiates_event_idx(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    assert disk.transport.event_idx is True
    assert disk.ring.event_idx is True
    assert disk.transport.features & C.VIRTIO_RING_F_EVENT_IDX


def test_device_rejects_unoffered_feature_bits(guest_env):
    tb, hv, guest = guest_env
    transport = guest.block_devices["vda"].transport
    offered = transport.read32(C.REG_DEVICE_FEATURES)
    assert offered & C.VIRTIO_RING_F_EVENT_IDX
    assert offered & C.VIRTIO_F_VERSION_1
    with pytest.raises(VirtioError):
        transport.write32(C.REG_DRIVER_FEATURES, offered | (1 << 27))


def test_kvmtool_never_offers_event_idx():
    """Table-1 generality: lkvm's minimalist virtio lacks EVENT_IDX,
    and the same driver must keep working against it."""
    tb = Testbed()
    hv = tb.launch_kvmtool(disk=tb.nvme_partition(32 * MiB))
    disk = hv.guest.block_devices["vda"]
    assert disk.transport.event_idx is False
    assert disk.ring.event_idx is False
    payload = b"\x3c" * SECTOR_SIZE
    disk.write_sectors(7, payload)
    assert disk.read_sectors(7, 1) == payload


# -- queued submission -------------------------------------------------------


def test_queued_read_matches_sync_read(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    payload = bytes(range(256)) * 32            # 16 sectors
    disk.write_sectors(0, payload)
    disk.set_iodepth(4)
    try:
        results = disk.read_sectors_queued([(i * 2, 2) for i in range(8)])
    finally:
        disk.set_iodepth(1)
    assert b"".join(results) == payload
    assert results == [disk.read_sectors(i * 2, 2) for i in range(8)]


def test_queued_write_roundtrip(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    chunks = [bytes([i]) * SECTOR_SIZE for i in range(16)]
    disk.set_iodepth(8)
    try:
        disk.write_sectors_queued([(100 + i, chunk) for i, chunk in enumerate(chunks)])
    finally:
        disk.set_iodepth(1)
    assert disk.read_sectors(100, 16) == b"".join(chunks)


def test_queued_window_kicks_once_and_coalesces_interrupts(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    disk.write_sectors(0, b"\x11" * (16 * SECTOR_SIZE))
    disk.set_iodepth(8)
    tb.costs.reset_counters()
    try:
        disk.read_sectors_queued([(i, 1) for i in range(16)])
    finally:
        disk.set_iodepth(1)
    # Two windows of eight: one doorbell and one interrupt per window.
    assert tb.costs.count("kicks") == 2
    assert tb.costs.count("kick_suppressed") == 14
    assert tb.costs.count("irq_coalesced") == 14
    assert tb.costs.count("irq_inject") == 2
    assert tb.costs.batch_histogram("blk") == {8: 2}


def test_queued_depth_one_behaves_like_sync(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    disk.write_sectors(0, b"\x22" * (8 * SECTOR_SIZE))
    tb.costs.reset_counters()
    disk.read_sectors_queued([(i, 1) for i in range(8)])
    assert tb.costs.count("kicks") == 8
    assert tb.costs.count("kick_suppressed") == 0
    assert tb.costs.count("irq_coalesced") == 0
    assert tb.costs.count("irq_inject") == 8
    assert tb.costs.batch_histogram("blk") == {1: 8}


def test_queued_without_event_idx_kicks_per_request():
    tb = Testbed()
    hv = tb.launch_kvmtool(disk=tb.nvme_partition(32 * MiB))
    disk = hv.guest.block_devices["vda"]
    disk.write_sectors(0, b"\x44" * (8 * SECTOR_SIZE))
    disk.set_iodepth(4)
    tb.costs.reset_counters()
    try:
        results = disk.read_sectors_queued([(i, 1) for i in range(8)])
    finally:
        disk.set_iodepth(1)
    assert results == [b"\x44" * SECTOR_SIZE] * 8
    # No EVENT_IDX: the driver may not defer a single doorbell.
    assert tb.costs.count("kicks") == 8
    assert tb.costs.count("kick_suppressed") == 0


def test_set_iodepth_validates_range(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    with pytest.raises(VirtioError):
        disk.set_iodepth(0)
    with pytest.raises(VirtioError):
        disk.set_iodepth(disk.MAX_IODEPTH + 1)


def test_queued_request_must_fit_its_pool_slot(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    disk.set_iodepth(disk.MAX_IODEPTH)          # 8 KiB slots
    try:
        with pytest.raises(VirtioError):
            disk.read_sectors_queued([(0, 32)])  # 16 KiB request
    finally:
        disk.set_iodepth(1)


# -- _service_request error semantics ---------------------------------------


def _raw_submit(disk, buffers):
    """Push a hand-crafted chain and return its (status, written) pair."""
    head = disk.ring.add_chain(buffers)
    disk.transport.notify(0)
    completions = disk.ring.collect_used()
    assert [h for h, _ in completions] == [head]
    status_gpa = buffers[-1][0]
    return disk.kernel.memory.read(status_gpa, 1)[0], completions[0][1]


def test_read_of_non_sector_multiple_fails_with_ioerr(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    hdr, status = disk._hdr_gpa, disk._hdr_gpa + BLK_HEADER_SIZE
    disk.kernel.memory.write(hdr, struct.pack("<IIQ", C.VIRTIO_BLK_T_IN, 0, 0))
    status_byte, written = _raw_submit(disk, [
        (hdr, BLK_HEADER_SIZE, False),
        (disk._data_gpa, 100, True),            # not a sector multiple
        (status, 1, True),
    ])
    assert status_byte == C.VIRTIO_BLK_S_IOERR
    assert written == 1                          # the status byte only


def test_mid_chain_failure_reports_no_partial_progress(guest_env):
    """First buffer copies fine, second is read-only: the completion
    must not advertise the 512 bytes that landed before the error."""
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    hdr, status = disk._hdr_gpa, disk._hdr_gpa + BLK_HEADER_SIZE
    disk.kernel.memory.write(hdr, struct.pack("<IIQ", C.VIRTIO_BLK_T_IN, 0, 0))
    status_byte, written = _raw_submit(disk, [
        (hdr, BLK_HEADER_SIZE, False),
        (disk._data_gpa, SECTOR_SIZE, True),
        (disk._data_gpa + SECTOR_SIZE, SECTOR_SIZE, False),   # not writable
        (status, 1, True),
    ])
    assert status_byte == C.VIRTIO_BLK_S_IOERR
    assert written == 1


def test_unknown_request_type_reports_unsupp(guest_env):
    tb, hv, guest = guest_env
    disk = guest.block_devices["vda"]
    hdr, status = disk._hdr_gpa, disk._hdr_gpa + BLK_HEADER_SIZE
    disk.kernel.memory.write(hdr, struct.pack("<IIQ", 0x7F, 0, 0))
    status_byte, written = _raw_submit(disk, [
        (hdr, BLK_HEADER_SIZE, False),
        (status, 1, True),
    ])
    assert status_byte == C.VIRTIO_BLK_S_UNSUPP
    assert written == 1


# -- the attach-time knob ----------------------------------------------------


def test_vmsh_attach_event_idx_knob():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, event_idx=False)
    assert session.report.event_idx is False
    disk = hv.guest.vmsh_block
    assert disk.ring.event_idx is False
    tb.costs.reset_counters()
    data = disk.read_sectors(0, 2)
    assert len(data) == 2 * SECTOR_SIZE
    assert tb.costs.count("kicks") == 1
    assert tb.costs.count("kick_suppressed") == 0


def test_vmsh_attach_event_idx_default_on():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    assert session.report.event_idx is True
    assert hv.guest.vmsh_block.ring.event_idx is True
