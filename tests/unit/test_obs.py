"""Unit coverage for the observability spine (``repro.obs``).

Everything here runs against a bare ``Clock`` — no testbed, no VMs —
so it pins the *mechanisms*: registry keying and type safety, span
nesting across tracks, the exporters' formats, the trace-event
validator, and the tracer's eviction-proof cursor.
"""

import json

import pytest

from repro.obs import Observability
from repro.obs.export import (
    metrics_json,
    perfetto_trace,
    prometheus_text,
    validate_trace_events,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.sim.clock import Clock
from repro.sim.trace import Tracer


# -- metrics registry -----------------------------------------------------------


def test_registry_get_or_create_shares_objects():
    reg = MetricsRegistry()
    a = reg.scope("kvm", vm=7).counter("vmexits")
    b = reg.scope("kvm").counter("vmexits", vm=7)
    assert a is b
    a.inc(3)
    assert b.value == 3


def test_registry_scope_paths_and_labels_merge():
    reg = MetricsRegistry()
    child = reg.scope("virtio", "blk", device="d0").scope("q", queue=1)
    metric = child.counter("kicks")
    assert metric.labels == (("device", "d0"), ("queue", "1"))
    snap = reg.snapshot()
    assert list(snap) == ['virtio.blk.q.kicks{device="d0",queue="1"}']


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("x")


def test_registry_walk_is_scoped_and_sorted():
    reg = MetricsRegistry()
    reg.scope("b").counter("two")
    reg.scope("a").counter("one")
    reg.scope("ab").counter("three")       # prefix of neither scope
    keys = [key[0] for key, _ in reg.scope("a").walk()]
    assert keys == ["a"]
    all_keys = [key[0] for key, _ in reg.walk()]
    assert all_keys == sorted(all_keys)


def test_histogram_exact_samples():
    reg = MetricsRegistry()
    h = reg.histogram("depth")
    h.observe(1, n=3)
    h.observe(8)
    assert h.count == 4 and h.sum == 11
    assert reg.snapshot()["depth"]["samples"] == {"1": 3, "8": 1}


# -- spans ----------------------------------------------------------------------


def test_spans_nest_per_track():
    clock = Clock()
    rec = SpanRecorder(clock)
    outer = rec.begin("outer", track="t1")
    other = rec.begin("elsewhere", track="t2")
    inner = rec.begin("inner", track="t1")
    assert inner.parent_sid == outer.sid
    assert other.parent_sid is None        # separate track, separate stack
    clock.advance(100)
    rec.end(inner)
    rec.end(outer)
    assert inner.duration_ns == 100
    assert rec.open_spans() == [other]


def test_span_out_of_order_close_pops_abandoned_children():
    rec = SpanRecorder(Clock())
    outer = rec.begin("outer")
    rec.begin("abandoned")
    rec.end(outer)
    assert rec.open_spans() == []


def test_span_cap_drops_new_spans_keeps_history():
    rec = SpanRecorder(Clock(), max_spans=2)
    first = rec.begin("a")
    rec.begin("b")
    rec.begin("c")
    assert len(rec.spans) == 2 and rec.dropped_spans == 1
    assert rec.spans[0] is first           # history never evicted


def test_span_context_manager_records_failure_status():
    rec = SpanRecorder(Clock())
    with pytest.raises(ValueError):
        with rec.span("work"):
            raise ValueError("boom")
    assert rec.spans[0].attrs["status"] == "ValueError"


# -- exporters ------------------------------------------------------------------


def _small_hub():
    hub = Observability(Clock())
    hub.metrics.scope("kvm", vm=1).counter("vmexits").inc(5)
    hub.metrics.scope("blk").histogram("depth").observe(2, n=3)
    with hub.span("attach", track="a", pid=1):
        hub.clock_noop = None              # attrs only; no timing needed
    return hub


def test_metrics_json_is_sorted_and_stable():
    hub = _small_hub()
    text = metrics_json(hub.metrics)
    assert text == metrics_json(hub.metrics)
    loaded = json.loads(text)
    assert loaded['kvm.vmexits{vm="1"}'] == {"kind": "counter", "value": 5}


def test_prometheus_text_renders_counters_and_histograms():
    text = prometheus_text(_small_hub().metrics)
    assert '# TYPE vmsh_kvm_vmexits counter' in text
    assert 'vmsh_kvm_vmexits{vm="1"} 5' in text
    assert 'vmsh_blk_depth_bucket{le="2"} 3' in text
    assert 'vmsh_blk_depth_bucket{le="+Inf"} 3' in text
    assert 'vmsh_blk_depth_sum 6' in text
    assert 'vmsh_blk_depth_count 3' in text


def test_perfetto_trace_shape_and_validator_accept():
    clock = Clock()
    hub = Observability(clock)
    span = hub.spans.begin("attach", track="attach:1")
    clock.advance(2_000)
    hub.spans.begin("attach.step", track="attach:1", step="stop_vcpus")
    clock.advance(1_000)
    trace = perfetto_trace(hub.spans)
    assert validate_trace_events(trace) == []
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 2
    # Open spans render to the current clock and are flagged.
    assert all(e["args"]["open"] for e in xs)
    names = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
    assert "attach:1" in names


def test_validator_flags_malformed_traces():
    assert validate_trace_events({"displayTimeUnit": "ns"})
    assert validate_trace_events({"traceEvents": [{"ph": "X"}]})
    bad_dur = {"traceEvents": [
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": -1}
    ]}
    assert validate_trace_events(bad_dur)
    ok = {"traceEvents": [
        {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1}
    ]}
    assert validate_trace_events(ok) == []


def test_observability_ids_are_per_hub():
    clock = Clock()
    a, b = Observability(clock), Observability(clock)
    assert a.next_id("attach") == 1
    assert a.next_id("attach") == 2
    assert a.next_id("gateway") == 1       # independent streams per kind
    assert b.next_id("attach") == 1        # and per hub (determinism)


# -- tracer cursor --------------------------------------------------------------


def test_tracer_mark_since_without_eviction():
    tracer = Tracer()
    tracer.emit("x", "before")
    mark = tracer.mark()
    tracer.emit("x", "after1")
    tracer.emit("x", "after2")
    assert [e.name for e in tracer.since(mark)] == ["after1", "after2"]


def test_tracer_mark_survives_eviction():
    tracer = Tracer(max_events=10)
    for i in range(8):
        tracer.emit("x", f"pre{i}")
    mark = tracer.mark()
    for i in range(6):                     # crosses the oldest-half eviction
        tracer.emit("x", f"post{i}")
    assert tracer.dropped_events > 0
    names = [e.name for e in tracer.since(mark)]
    # Only post-mark events (plus the eviction marker), never stale
    # pre-mark events that a positional slice would have returned.
    assert "post5" in names
    assert not any(n.startswith("pre") for n in names)


def test_tracer_mark_clamps_when_marked_events_evicted():
    tracer = Tracer(max_events=10)
    mark = tracer.mark()
    for i in range(40):                    # evicts well past the mark
        tracer.emit("x", f"e{i}")
    survivors = tracer.since(mark)
    assert survivors == tracer.events      # clamped to what still exists


# -- handle cache (PR 8) --------------------------------------------------------


def test_handle_cache_reuses_metric_without_tree_walk():
    reg = MetricsRegistry()
    scope = reg.scope("sched", loop="main")
    first = scope.counter("events_dispatched")
    # Same call shape resolves through the interned handle cache to the
    # identical object — and the cache is shared across scope() copies.
    assert scope.counter("events_dispatched") is first
    assert reg.scope("sched", loop="main").counter("events_dispatched") is first
    assert len(reg._handles) == 1


def test_handle_cache_distinguishes_labels_and_kinds():
    reg = MetricsRegistry()
    a = reg.scope("fleet", shard=0).counter("invocations")
    b = reg.scope("fleet", shard=1).counter("invocations")
    assert a is not b
    a.inc()
    assert (a.value, b.value) == (1, 0)


def test_handle_cache_tolerates_unhashable_labels():
    reg = MetricsRegistry()
    # Unhashable label values can't be cache keys; the slow path must
    # still serve them (and keep serving the same object).
    a = reg.counter("odd", tags=["x"])
    b = reg.counter("odd", tags=["x"])
    assert a is b
    assert len(reg._handles) == 0


def test_discard_purges_stale_handles():
    reg = MetricsRegistry()
    counter = reg.scope("kvm", vm=3).counter("vmexits")
    counter.inc(7)
    reg.scope("kvm", vm=3).discard("vmexits")
    fresh = reg.scope("kvm", vm=3).counter("vmexits")
    # A cached handle surviving discard() would resurrect the dead
    # object — and its stale count — at the same call site.
    assert fresh is not counter
    assert fresh.value == 0


# -- span levels and sampling (PR 8) --------------------------------------------


def _turny_workload(level, sample_every=None):
    from repro.sim.sched import Scheduler

    clock = Clock()
    obs = Observability(clock, level=level, sample_every=sample_every)
    sched = Scheduler(clock, label="lvl", master_seed=5, obs=obs)

    def worker(period):
        for _ in range(10):
            yield period

    sched.spawn(worker(100), label="w1")
    sched.spawn(worker(130), label="w2")
    sched.run_until_idle()
    return obs


def test_set_level_validates_arguments():
    obs = Observability(Clock())
    with pytest.raises(ValueError, match="unknown span level"):
        obs.set_level("verbose")
    with pytest.raises(ValueError, match="positive"):
        obs.set_level("fleet", sample_every=0)
    with pytest.raises(ValueError, match="positive"):
        Observability(Clock(), level="counters", sample_every=-3)


def test_records_reflects_level_and_sampling():
    spans = Observability(Clock(), level="fleet").spans
    assert not spans.records("sched.turn")     # suppressed micro-span
    assert spans.records("attach.pipeline")    # macro spans survive
    spans.set_level("counters")
    assert not spans.records("attach.pipeline")
    spans.set_level("counters", sample_every=50)
    assert spans.records("sched.turn")         # thinned, not absent


def test_levels_thin_spans_but_keep_metrics_identical():
    full = _turny_workload("full")
    fleet = _turny_workload("fleet")
    counters = _turny_workload("counters")
    # Metrics are the ground truth at every level.
    assert full.metrics_json() == fleet.metrics_json() == counters.metrics_json()
    full_turns = [s for s in full.spans.spans if s.name == "sched.turn"]
    assert full_turns                           # "full" records every turn
    assert not [s for s in fleet.spans.spans if s.name == "sched.turn"]
    assert counters.spans.spans == []           # counters: no spans at all


def test_sampling_keeps_every_nth_suppressed_span():
    sampled = _turny_workload("counters", sample_every=4)
    full = _turny_workload("full")
    kept = [s for s in sampled.spans.spans if s.name == "sched.turn"]
    all_turns = [s for s in full.spans.spans if s.name == "sched.turn"]
    assert len(kept) == len(all_turns) // 4     # count-based, deterministic
    again = _turny_workload("counters", sample_every=4)
    assert [s.start_ns for s in again.spans.spans if s.name == "sched.turn"] \
        == [s.start_ns for s in kept]
