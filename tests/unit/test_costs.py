"""Cost model: charging, counters, copy-path scaling."""

from repro.sim.clock import Clock
from repro.sim.costs import CostModel, CostParams


def _model():
    return CostModel(Clock())


def test_syscall_advances_clock():
    model = _model()
    model.syscall()
    assert model.clock.now == model.p.syscall_ns
    assert model.count("syscall") == 1


def test_counters_accumulate():
    model = _model()
    for _ in range(5):
        model.vmexit()
    assert model.count("vmexit") == 5
    model.reset_counters()
    assert model.count("vmexit") == 0


def test_memcpy_scales_with_size():
    model = _model()
    model.memcpy(0)
    base = model.clock.now
    model.memcpy(8_000_000)  # 8 MB at 8 GB/s -> 1 ms
    assert model.clock.now - base == model.p.memcpy_call_ns + 1_000_000


def test_procvm_has_higher_fixed_cost_than_memcpy():
    params = CostParams()
    assert params.procvm_call_ns > params.memcpy_call_ns * 10


def test_bytewise_copy_slower_than_procvm():
    """The §5 ablation depends on this ordering."""
    a = _model()
    b = _model()
    a.procvm_copy(1_000_000)
    b.bytewise_copy(1_000_000)
    assert b.clock.now > a.clock.now * 2


def test_procvm_vectored_single_segment_matches_procvm_copy():
    a = _model()
    b = _model()
    a.procvm_copy(4096)
    b.procvm_vectored(4096, 1)
    assert a.clock.now == b.clock.now
    assert b.count("procvm_copy") == 1
    assert b.count("procvm_sg_segments") == 0


def test_procvm_vectored_charges_per_segment_surcharge():
    a = _model()
    b = _model()
    a.procvm_copy(64 * 4096)
    b.procvm_vectored(64 * 4096, 64)
    assert b.clock.now == a.clock.now + 63 * b.p.procvm_seg_ns
    assert b.count("procvm_copy") == 1
    assert b.count("procvm_sg_segments") == 64


def test_procvm_vectored_beats_per_page_calls():
    """What sg-batching buys: 64 segments amortise one syscall entry."""
    batched = _model()
    per_page = _model()
    batched.procvm_vectored(64 * 4096, 64)
    for _ in range(64):
        per_page.procvm_copy(4096)
    assert batched.clock.now < per_page.clock.now
    assert per_page.count("procvm_copy") == 64
    assert batched.count("procvm_copy") == 1


def test_bump_counts_without_advancing_clock():
    model = _model()
    model.bump("things")
    model.bump("things", 2)
    assert model.count("things") == 3
    assert model.clock.now == 0


def test_disk_io_includes_service_time_and_bandwidth():
    model = _model()
    model.disk_io(3_200_000)  # exactly 1 ms of bandwidth
    assert model.clock.now == model.p.disk_service_ns + 1_000_000


def test_ptrace_stop_dwarfs_syscall():
    """wrap_syscall hurts because stops are ~25x a syscall."""
    params = CostParams()
    assert params.ptrace_stop_ns > 10 * params.syscall_ns


def test_p9_data_op_is_multiple_rpcs():
    model = _model()
    model.p9_data_op()
    assert model.clock.now == model.p.p9_rpc_ns * model.p.p9_rpcs_per_data_op


def test_pagecache_hit_is_cheap():
    model = _model()
    model.pagecache_hit(1)
    hit = model.clock.now
    model2 = _model()
    model2.disk_io(4096)
    assert model2.clock.now > 10 * hit


def test_custom_params_respected():
    params = CostParams(syscall_ns=7)
    model = CostModel(Clock(), params)
    model.syscall()
    assert model.clock.now == 7
