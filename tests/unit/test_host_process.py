"""Host processes: fd tables, address spaces, eventfds, sockets."""

import pytest

from repro.errors import BadFileDescriptorError, HostError, MemoryError_
from repro.host.kernel import HostKernel
from repro.host.process import EventFd, FileObject, Process, SocketPair
from repro.units import MiB


@pytest.fixture()
def host():
    return HostKernel()


def test_pids_and_tids_are_unique(host):
    a = host.spawn_process("a")
    b = host.spawn_process("b")
    assert a.pid != b.pid
    tids = [t.tid for t in a.threads] + [t.tid for t in b.threads]
    a.spawn_thread("worker")
    tids.append(a.threads[-1].tid)
    assert len(set(tids)) == len(tids)


def test_fd_table_install_get_close(host):
    process = host.spawn_process("p")
    obj = EventFd()
    fd = process.fds.install(obj)
    assert process.fds.get(fd) is obj
    process.fds.close(fd)
    with pytest.raises(BadFileDescriptorError):
        process.fds.get(fd)


def test_fds_start_above_std_streams(host):
    process = host.spawn_process("p")
    assert process.fds.install(FileObject()) >= 3


def test_address_space_mmap_read_write(host):
    process = host.spawn_process("p")
    addr = process.address_space.mmap(1 * MiB, name="test").start
    process.address_space.write(addr + 100, b"data")
    assert process.address_space.read(addr + 100, 4) == b"data"


def test_address_space_guard_gaps(host):
    process = host.spawn_process("p")
    m1 = process.address_space.mmap(4096)
    m2 = process.address_space.mmap(4096)
    assert m2.start > m1.end  # gap between mappings
    with pytest.raises(MemoryError_):
        process.address_space.read(m1.end, 1)


def test_munmap(host):
    process = host.spawn_process("p")
    m = process.address_space.mmap(4096)
    process.address_space.munmap(m.start)
    with pytest.raises(MemoryError_):
        process.address_space.read(m.start, 1)


def test_cross_mapping_access_rejected(host):
    process = host.spawn_process("p")
    m = process.address_space.mmap(4096)
    with pytest.raises(MemoryError_):
        process.address_space.read(m.start + 4090, 10)


def test_eventfd_signal_and_drain():
    efd = EventFd()
    fired = []
    efd.on_signal(lambda: fired.append(1))
    efd.signal()
    efd.signal()
    assert efd.drain() == 2
    assert efd.drain() == 0
    assert len(fired) == 2


def test_socketpair_delivery():
    a, b = SocketPair.pair()
    a.send({"hello": 1})
    assert b.recv() == {"hello": 1}
    with pytest.raises(HostError):
        b.recv()


def test_socket_on_message_callback():
    a, b = SocketPair.pair()
    got = []
    b.on_message(got.append)
    a.send("ping")
    assert got == ["ping"]


def test_capability_management(host):
    process = host.spawn_process("p")
    assert process.has_capability("CAP_BPF")
    process.drop_capability("CAP_BPF")
    assert not process.has_capability("CAP_BPF")


def test_thread_lookup_by_name(host):
    process = host.spawn_process("vmm")
    process.spawn_thread("vcpu0")
    assert process.thread_by_name("vcpu0").name == "vcpu0"
    with pytest.raises(HostError):
        process.thread_by_name("nope")
