"""The guest filesystem: inode ops, data paths, quota, extents."""

import pytest

from repro.errors import VfsError
from repro.guestos.blockcore import MemoryBlockDevice, NativeDisk
from repro.guestos.fs import Filesystem
from repro.guestos.pagecache import PageCache
from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.units import MiB, PAGE_SIZE


def memfs() -> Filesystem:
    return Filesystem("tmpfs")


def devfs(costs=None) -> Filesystem:
    device = MemoryBlockDevice("vdx", 32 * MiB)
    return Filesystem("xfs", device=device, cache=PageCache(costs), costs=costs)


@pytest.fixture(params=["mem", "dev"])
def fs(request) -> Filesystem:
    return memfs() if request.param == "mem" else devfs()


def test_create_lookup_read_write(fs):
    node = fs.create(fs.root_ino, "file.txt")
    fs.write(node.no, 0, b"hello")
    assert fs.read(node.no, 0, 5) == b"hello"
    assert fs.lookup(fs.root_ino, "file.txt").no == node.no


def test_read_past_eof_truncates(fs):
    node = fs.create(fs.root_ino, "f")
    fs.write(node.no, 0, b"abc")
    assert fs.read(node.no, 1, 100) == b"bc"
    assert fs.read(node.no, 10, 5) == b""


def test_sparse_hole_reads_zero(fs):
    node = fs.create(fs.root_ino, "sparse")
    fs.write(node.no, 3 * PAGE_SIZE, b"tail")
    assert fs.read(node.no, 0, PAGE_SIZE) == b"\x00" * PAGE_SIZE
    assert fs.read(node.no, 3 * PAGE_SIZE, 4) == b"tail"


def test_unlink_frees_space():
    fs = devfs()
    node = fs.create(fs.root_ino, "big")
    fs.write(node.no, 0, b"\xaa" * (10 * PAGE_SIZE))
    fs.sync_all()
    used = fs.used_pages
    assert used >= 10
    fs.unlink(fs.root_ino, "big")
    assert fs.used_pages == used - 10


def test_nlink_semantics(fs):
    node = fs.create(fs.root_ino, "a")
    fs.link(fs.root_ino, "b", node.no)
    assert node.nlink == 2
    fs.unlink(fs.root_ino, "a")
    assert node.nlink == 1
    assert fs.lookup(fs.root_ino, "b").no == node.no


def test_rmdir_requires_empty(fs):
    d = fs.mkdir(fs.root_ino, "d")
    fs.create(d.no, "child")
    with pytest.raises(VfsError, match="ENOTEMPTY"):
        fs.rmdir(fs.root_ino, "d")
    fs.unlink(d.no, "child")
    fs.rmdir(fs.root_ino, "d")


def test_rename_replaces_file(fs):
    a = fs.create(fs.root_ino, "a")
    fs.write(a.no, 0, b"keepme")
    fs.create(fs.root_ino, "b")
    fs.rename(fs.root_ino, "a", fs.root_ino, "b")
    assert fs.read(fs.lookup(fs.root_ino, "b").no, 0, 6) == b"keepme"
    with pytest.raises(VfsError, match="ENOENT"):
        fs.lookup(fs.root_ino, "a")


def test_readonly_filesystem(fs):
    fs.read_only = True
    with pytest.raises(VfsError, match="EROFS"):
        fs.create(fs.root_ino, "nope")
    with pytest.raises(VfsError, match="EROFS"):
        fs.mkdir(fs.root_ino, "nope")


def test_data_round_trips_through_device():
    """Written bytes must be reconstructable from raw device sectors."""
    device = MemoryBlockDevice("vdx", 8 * MiB)
    fs = Filesystem("xfs", device=device, cache=PageCache())
    node = fs.create(fs.root_ino, "f")
    payload = bytes(range(256)) * 32
    fs.write(node.no, 0, payload)
    fs.sync_all()
    raw = b"".join(
        device.read_sectors(s, 8) for s in range(0, device.capacity_sectors, 8)
    )
    assert payload in raw


def test_direct_io_alignment_enforced():
    fs = devfs()
    node = fs.create(fs.root_ino, "d")
    with pytest.raises(VfsError, match="EINVAL"):
        fs.write(node.no, 100, b"x" * 512, direct=True)
    with pytest.raises(VfsError, match="EINVAL"):
        fs.write(node.no, 0, b"x" * 100, direct=True)


def test_direct_write_then_buffered_read():
    fs = devfs()
    node = fs.create(fs.root_ino, "d")
    fs.write(node.no, 0, b"\x11" * 1024, direct=True)
    assert fs.read(node.no, 0, 1024) == b"\x11" * 1024


def test_buffered_write_then_direct_read_sees_data():
    fs = devfs()
    node = fs.create(fs.root_ino, "d")
    fs.write(node.no, 0, b"\x22" * 4096)
    # Direct read forces writeback first.
    assert fs.read(node.no, 0, 4096, direct=True) == b"\x22" * 4096


def test_extents_batch_contiguous_pages():
    costs = CostModel(Clock())
    device = NativeDisk("nvme", 32 * MiB, costs=costs)
    fs = Filesystem("xfs", device=device, cache=PageCache(costs), costs=costs)
    node = fs.create(fs.root_ino, "big")
    fs.write(node.no, 0, b"\x33" * (64 * PAGE_SIZE))
    costs.reset_counters()
    fs.fsync(node.no)
    # 64 contiguous dirty pages coalesce into very few device requests.
    assert costs.count("disk_io") <= 2


def test_quota_accounting_per_uid():
    fs = devfs()
    fs.quota_enabled = True
    node = fs.create(fs.root_ino, "mine", uid=1000)
    fs.write(node.no, 0, b"\x44" * (3 * PAGE_SIZE))
    fs.sync_all()
    fs.quota_enabled = True
    # Device is virtio-less MemoryBlockDevice: no pquota support.
    with pytest.raises(VfsError, match="ENOTSUP"):
        fs.quota_report()


def test_quota_report_native_device():
    device = NativeDisk("nvme", 8 * MiB)
    fs = Filesystem("xfs", device=device, cache=PageCache(), features={"quota"})
    node = fs.create(fs.root_ino, "mine", uid=1000)
    fs.write(node.no, 0, b"\x55" * (2 * PAGE_SIZE))
    fs.sync_all()
    report = fs.quota_report()
    assert report[1000] == 2


def test_enospc():
    device = MemoryBlockDevice("tiny", 16 * PAGE_SIZE)
    fs = Filesystem("xfs", device=device, cache=PageCache())
    node = fs.create(fs.root_ino, "f")
    with pytest.raises(VfsError, match="ENOSPC"):
        fs.write(node.no, 0, b"\x66" * (20 * PAGE_SIZE))


def test_xattr_crud(fs):
    node = fs.create(fs.root_ino, "x")
    fs.setxattr(node.no, "user.key", b"v1")
    assert fs.getxattr(node.no, "user.key") == b"v1"
    assert fs.listxattr(node.no) == ["user.key"]
    fs.removexattr(node.no, "user.key")
    with pytest.raises(VfsError, match="ENODATA"):
        fs.getxattr(node.no, "user.key")


def test_truncate_zeroes_resurrected_range(fs):
    node = fs.create(fs.root_ino, "t")
    fs.write(node.no, 0, b"\x77" * 8192)
    fs.truncate(node.no, 100)
    fs.truncate(node.no, 8192)
    assert fs.read(node.no, 100, 8092) == b"\x00" * 8092


def test_direct_write_preserves_partial_page_tail():
    """Regression: a single-page direct write with an uncovered tail
    must not zero the pre-existing tail bytes on the device."""
    fs = devfs()
    node = fs.create(fs.root_ino, "edge")
    fs.write(node.no, 0, b"A" * 4096, direct=True)
    fs.write(node.no, 0, b"B" * 512, direct=True)
    data = fs.read(node.no, 0, 4096)
    assert data[:512] == b"B" * 512
    assert data[512:] == b"A" * 3584
    # Interior sector too.
    fs.write(node.no, 512, b"C" * 512, direct=True)
    data = fs.read(node.no, 0, 4096)
    assert data[:512] == b"B" * 512
    assert data[512:1024] == b"C" * 512
    assert data[1024:] == b"A" * 3072


def test_dirty_eviction_writes_back():
    """Regression: dirty pages evicted under cache pressure must be
    persisted, not discarded."""
    from repro.guestos.blockcore import MemoryBlockDevice
    from repro.guestos.pagecache import PageCache
    from repro.units import MiB

    cache = PageCache(capacity_pages=4)
    fs = Filesystem("xfs", device=MemoryBlockDevice("d", 8 * MiB), cache=cache)
    fs.DIRTY_THRESHOLD_PAGES = 10**9        # defeat threshold writeback
    node = fs.create(fs.root_ino, "f")
    fs.write(node.no, 0, bytes([7]) * (8 * 4096))
    fs.sync_all()
    fs.drop_caches()
    data = fs.read(node.no, 0, 8 * 4096)
    assert all(data[i * 4096] == 7 for i in range(8))
