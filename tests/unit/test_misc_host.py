"""Remaining host/infra pieces: tracer, seccomp profiles, host files, p9."""

import pytest

from repro.host.files import HostFile
from repro.host.seccomp import (
    SeccompFilter,
    VMSH_INJECTED_SYSCALLS,
    firecracker_vcpu_filter,
    firecracker_vmm_filter,
)
from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.sim.trace import Event, NullTracer, Tracer
from repro.units import MiB, PAGE_SIZE


# -- tracer -----------------------------------------------------------------

def test_tracer_records_and_filters():
    clock = Clock()
    tracer = Tracer(clock)
    tracer.emit("kvm", "set_memslot", slot=0)
    clock.advance(10)
    tracer.emit("vmsh", "attached", pid=1)
    tracer.emit("kvm", "set_ioregion")
    assert len(tracer) == 3
    assert [e.name for e in tracer.find(category="kvm")] == [
        "set_memslot", "set_ioregion",
    ]
    assert tracer.find(name="attached")[0].time_ns == 10
    assert tracer.names("kvm") == ["set_memslot", "set_ioregion"]


def test_tracer_bounded_memory():
    tracer = Tracer(max_events=10)
    for i in range(25):
        tracer.emit("x", f"e{i}")
    assert len(tracer) <= 11


def test_tracer_eviction_leaves_marker():
    tracer = Tracer(max_events=10)
    for i in range(12):
        tracer.emit("x", f"e{i}")
    assert tracer.dropped_events == 5
    markers = tracer.find("tracer", "evicted")
    assert len(markers) == 1
    assert markers[0].detail == {"dropped": 5, "total_dropped": 5}
    # The newest events survive the truncation.
    assert tracer.events[-1].name == "e11"


def test_tracer_eviction_total_accumulates():
    tracer = Tracer(max_events=10)
    for i in range(60):
        tracer.emit("x", f"e{i}")
    assert tracer.dropped_events > 5
    last_marker = tracer.find("tracer", "evicted")[-1]
    assert last_marker.detail["total_dropped"] == tracer.dropped_events


def test_tracer_disable():
    tracer = Tracer()
    tracer.enabled = False
    tracer.emit("x", "dropped")
    assert len(tracer) == 0


def test_null_tracer_drops_everything():
    tracer = NullTracer()
    tracer.emit("x", "y", detail=1)
    assert len(tracer) == 0


def test_event_str():
    event = Event(1500, "ptrace", "attach", {"pid": 7})
    assert "ptrace/attach" in str(event)
    assert "pid=7" in str(event)


# -- seccomp profiles --------------------------------------------------------------

def test_firecracker_vcpu_filter_blocks_vmsh_syscalls():
    """The crux of the §6.2 conflict: every syscall VMSH injects that
    the vCPU filter lacks."""
    vcpu = firecracker_vcpu_filter()
    blocked = {s for s in VMSH_INJECTED_SYSCALLS if not vcpu.allows(s)}
    assert "eventfd2" in blocked
    assert "process_vm_readv" in blocked
    assert "socketpair" in blocked
    assert vcpu.allows("ioctl")            # KVM_RUN must still work


def test_vmm_filter_also_insufficient():
    vmm = firecracker_vmm_filter()
    assert not vmm.allows("eventfd2")
    assert vmm.allows("mmap")


def test_filter_check_raises_with_context():
    from repro.errors import SeccompViolationError

    filt = SeccompFilter.allowlist("t", {"read"})
    with pytest.raises(SeccompViolationError) as info:
        filt.check("mmap", "worker-1")
    assert info.value.syscall == "mmap"
    assert info.value.thread_name == "worker-1"


# -- host files ---------------------------------------------------------------------

def test_host_file_page_cache_behaviour():
    costs = CostModel(Clock())
    hf = HostFile("/srv/data", size=1 * MiB, costs=costs)
    hf.io_read(0, PAGE_SIZE)                 # cold: disk
    assert costs.count("disk_io") == 1
    hf.io_read(0, PAGE_SIZE)                 # warm: cache hit
    assert costs.count("disk_io") == 1
    assert costs.count("pagecache_hit") == 1
    hf.discard_cache()
    hf.io_read(0, PAGE_SIZE)                 # cold again
    assert costs.count("disk_io") == 2


def test_host_file_direct_bypasses_cache():
    costs = CostModel(Clock())
    hf = HostFile("/dev/nvme0n1p3", size=1 * MiB, costs=costs, direct=True)
    hf.io_read(0, PAGE_SIZE)
    hf.io_read(0, PAGE_SIZE)
    assert costs.count("disk_io") == 2
    assert costs.count("pagecache_hit") == 0


def test_host_file_raw_accessors_uncosted():
    costs = CostModel(Clock())
    hf = HostFile("/x", size=1 * MiB, costs=costs)
    hf.pwrite_raw(100, b"setup-data")
    assert hf.pread_raw(100, 10) == b"setup-data"
    assert costs.clock.now == 0


def test_host_file_grows_on_write():
    hf = HostFile("/x", size=0)
    hf.pwrite_raw(5000, b"tail")
    assert hf.size == 5004


# -- 9p ---------------------------------------------------------------------------------

def test_p9_charges_rpcs_per_msize_chunk():
    from repro.guestos.vfs import MountNamespace, Vfs
    from repro.virtio.p9 import P9Filesystem

    costs = CostModel(Clock())
    fs = P9Filesystem(costs)
    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    costs.reset_counters()
    vfs.write_file("/big", b"\xaa" * (256 * 1024))   # 4 msize chunks
    rpc_events = costs.count("p9_rpc")
    assert rpc_events >= 4


def test_p9_guest_cache_hits_skip_rpcs():
    from repro.guestos.vfs import MountNamespace, Vfs
    from repro.virtio.p9 import P9Filesystem

    costs = CostModel(Clock())
    fs = P9Filesystem(costs)
    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    vfs.write_file("/f", b"\xbb" * 8192)
    costs.reset_counters()
    vfs.read_file("/f")                       # cached from the write
    first = costs.count("p9_rpc")
    fs.drop_caches()
    vfs.read_file("/f")                       # cold: needs RPCs
    assert costs.count("p9_rpc") > first


def test_p9_data_roundtrip():
    from repro.guestos.vfs import MountNamespace, Vfs
    from repro.virtio.p9 import P9Filesystem

    fs = P9Filesystem(CostModel(Clock()))
    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    payload = bytes(range(256)) * 100
    vfs.write_file("/data", payload)
    fs.drop_caches()
    assert vfs.read_file("/data") == payload
