"""Snapshot/restore/clone/migrate units, plus the fleet-path bugfixes.

Covers the PR 6 tentpole (``repro.core.snapshot``) at the unit level:
in-place restore rolls back diverged guest state, clones are
independent VMs with rebound interrupt plumbing, migration moves a VM
(and its attached session, via the detach/re-attach fallback) across
simulated hosts — plus the serverless snapshot pool and the three
satellite bugfixes (mid-yield instance termination, instance reaping,
sector-torn backend writes).
"""

import pytest

from repro.core.snapshot import VmSnapshot
from repro.errors import SnapshotError, VirtioError, VmshError
from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.testbed import Testbed
from repro.units import MSEC, SEC, SECTOR_SIZE
from repro.usecases.serverless import ServerlessDebugger, VHivePlatform
from repro.virtio.blk import MappedImageBackend


# -- capture / restore ----------------------------------------------------------------


def test_restore_rolls_back_guest_memory():
    tb = Testbed()
    hv = tb.launch_qemu()
    snap = VmSnapshot.capture(hv)
    mem = hv.vm.guest_memory()
    original = mem.read(hv.guest.cr3, 16)
    mem.write(hv.guest.cr3, b"\xde\xad\xbe\xef" * 4)
    snap.restore_into(hv)
    assert mem.read(hv.guest.cr3, 16) == original


def test_restore_rolls_back_vcpu_registers():
    tb = Testbed()
    hv = tb.launch_qemu()
    snap = VmSnapshot.capture(hv)
    vcpu = hv.vm.vcpus[0]
    saved = dict(vcpu.regs)
    ip = tb.arch.ip_register
    vcpu.regs[ip] = (vcpu.regs[ip] + 0x1000) & (2**64 - 1)
    snap.restore_into(hv)
    assert vcpu.regs == saved
    # identity preserved: the register dict object itself survives
    assert hv.vm.vcpus[0].regs is vcpu.regs


def test_restore_rolls_back_memslot_layout():
    tb = Testbed()
    hv = tb.launch_qemu()
    snap = VmSnapshot.capture(hv)
    before = [(s.slot, s.gpa, s.size, s.hva) for s in hv.vm.memslots()]
    free = hv.vm._memslots.free_slot_id()
    hv.vm._memslots.set_region(free, 0x8_0000_0000, 0x1000, 0x7F00DEAD0000)
    snap.restore_into(hv)
    assert [(s.slot, s.gpa, s.size, s.hva) for s in hv.vm.memslots()] == before


def test_restore_is_metrics_and_clock_silent():
    tb = Testbed()
    hv = tb.launch_qemu()
    now = tb.clock.now
    metrics = tb.obs.metrics_json()
    snap = VmSnapshot.capture(hv)
    snap.restore_into(hv)
    assert tb.clock.now == now
    assert tb.obs.metrics_json() == metrics


def test_restore_rejects_flavor_mismatch():
    tb = Testbed()
    qemu = tb.launch_qemu()
    fc = tb.launch_firecracker(seccomp=False)
    snap = VmSnapshot.capture(qemu)
    with pytest.raises(SnapshotError, match="cannot restore"):
        snap.restore_into(fc)


def test_cow_shares_unchanged_pages_against_base():
    tb = Testbed()
    hv = tb.launch_qemu()
    base = VmSnapshot.capture(hv)
    assert base.cow.pages_shared == 0          # nothing to share against
    second = VmSnapshot.capture(hv, base=base)
    assert second.cow.pages_total == base.cow.pages_total
    assert second.cow.pages_shared == second.cow.pages_total
    # Dirty one page: exactly that page is copied, the rest shared.
    hv.vm.guest_memory().write(hv.guest.cr3, b"\x01" * 8)
    third = VmSnapshot.capture(hv, base=base)
    assert third.cow.pages_copied >= 1
    assert third.cow.pages_shared == third.cow.pages_total - third.cow.pages_copied


# -- clone ---------------------------------------------------------------------------


def test_clone_is_an_independent_vm():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=False)
    snap = tb.snapshot(hv)
    clone = tb.clone(snap)
    assert clone.pid != hv.pid
    assert clone.pid in tb.host.processes
    assert clone.vm in tb.kvm.vms
    # RAM is copied, not shared: dirtying the source leaves the clone alone.
    sentinel = clone.vm.guest_memory().read(clone.guest.cr3, 8)
    hv.vm.guest_memory().write(hv.guest.cr3, b"Z" * 8)
    assert clone.vm.guest_memory().read(clone.guest.cr3, 8) == sentinel


def test_clone_supports_vmsh_attach():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=False)
    clone = tb.clone(tb.snapshot(hv))
    session = tb.vmsh().attach(clone.pid)
    out = session.console.run_command("ls /")
    assert "etc" in out.output
    session.detach()


def test_clone_requires_frozen_graph():
    tb = Testbed()
    hv = tb.launch_qemu()
    snap = VmSnapshot.capture(hv, freeze=False)
    with pytest.raises(SnapshotError, match="freeze"):
        snap.clone_into(tb.host, tb.kvm)


def test_freeze_refuses_ptraced_vm():
    from repro.host.ptrace import attach as ptrace_attach

    tb = Testbed()
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    ptrace = ptrace_attach(tb.host, vmsh.process, hv.process)
    with pytest.raises(SnapshotError, match="detach"):
        VmSnapshot.capture(hv, freeze=True)
    ptrace.detach()
    assert VmSnapshot.capture(hv, freeze=True) is not None


def test_snapshot_and_clone_charge_virtual_time():
    tb = Testbed()
    hv = tb.launch_qemu()
    t0 = tb.clock.now
    snap = tb.snapshot(hv)
    assert tb.clock.now - t0 == tb.costs.p.vm_snapshot_capture_ns
    assert tb.costs.count("vm_snapshot_capture") == 1
    t1 = tb.clock.now
    tb.clone(snap)
    assert tb.clock.now - t1 == tb.costs.p.vm_snapshot_restore_ns
    t2 = tb.clock.now
    tb.clone(snap, charge=False)
    assert tb.clock.now == t2


# -- attached sessions --------------------------------------------------------------


def test_restore_with_attached_session_keeps_console_alive():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    snap = VmSnapshot.capture(hv, session=session)
    session.console.run_command("ls /var/lib/vmsh")
    snap.restore_into(hv, session=session)
    out = session.console.run_command("cat /var/lib/vmsh/etc/hostname")
    assert "guest" in out.output
    session.detach()


def test_detach_is_idempotent_after_restore():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    snap = VmSnapshot.capture(hv, session=session)
    snap.restore_into(hv, session=session)
    session.detach()
    session.detach()  # double detach: a no-op, not an error
    assert session.detached


def test_quiesce_drains_service_task():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    session.start_service(tb.scheduler)
    device_host = session.device_host
    assert device_host._service_task is not None
    snap = VmSnapshot.capture(hv, session=session, scheduler=tb.scheduler)
    # quiesce drained and the resume hook reinstalled a service task
    assert device_host._pending_kicks == []
    assert device_host._service_task is not None
    assert snap.session is not None
    device_host.stop_service_task()
    session.detach()


# -- migrate --------------------------------------------------------------------------


def test_migrate_moves_vm_to_second_host():
    tb = Testbed()
    hv = tb.launch_qemu()
    source_pid = hv.pid
    result = tb.migrate(hv)
    assert result.hypervisor.host is not tb.host
    assert result.hypervisor.host in tb.hosts
    assert tb.host.processes[source_pid].exited
    assert result.fallback_reason is None
    assert tb.costs.count("vm_migrate") == 1


def test_migrate_with_live_session_detaches_and_reattaches():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    result = tb.migrate(hv, session=session)
    assert result.reattached
    assert "detach/re-attach" in result.fallback_reason
    assert session.detached                     # old session torn down
    out = result.session.console.run_command("ls /")
    assert "etc" in out.output
    result.session.detach()


# -- serverless snapshot pool ---------------------------------------------------------


def _pool_platform():
    tb = Testbed()
    platform = VHivePlatform(tb, snapshot_pool=True)
    platform.deploy("resize", lambda p: {"ok": p["width"] * 2})
    return tb, platform


def test_pool_restores_instead_of_rebooting():
    tb, platform = _pool_platform()
    assert platform.invoke("resize", {"width": 2}) == {"ok": 4}
    tb.clock.advance(3 * SEC)
    platform.scale_down()
    assert platform.invoke("resize", {"width": 3}) == {"ok": 6}
    assert tb.costs.count("faas_cold_start") == 1        # only the first
    assert tb.costs.count("faas_snapshot_restore") == 1  # pool hit
    assert tb.costs.count("faas_pool_miss") == 1
    assert tb.costs.count("faas_pool_hit") == 1
    assert any("restored resize from snapshot pool" in l.message
               for l in platform.logs)


def test_pool_hit_is_at_least_5x_cheaper_than_cold_start():
    tb, platform = _pool_platform()
    t0 = tb.clock.now
    platform.invoke("resize", {"width": 1})
    cold_latency = tb.clock.now - t0
    tb.clock.advance(3 * SEC)
    platform.scale_down()
    t1 = tb.clock.now
    platform.invoke("resize", {"width": 2})
    restore_latency = tb.clock.now - t1
    # The acceptance criterion: a pool-served cold invocation is >= 5x
    # cheaper than faas_cold_start_ns (and than the real cold path).
    assert restore_latency * 5 <= tb.costs.p.faas_cold_start_ns
    assert restore_latency * 5 <= cold_latency


def test_pool_disabled_by_default_keeps_cold_start_semantics():
    tb = Testbed()
    platform = VHivePlatform(tb)
    platform.deploy("f", lambda p: p)
    platform.invoke("f", {})
    tb.clock.advance(3 * SEC)
    platform.scale_down()
    platform.invoke("f", {})
    assert tb.costs.count("faas_cold_start") == 2
    assert tb.costs.count("faas_snapshot_restore") == 0


def test_pool_task_invocations_charge_restore_cost():
    tb, platform = _pool_platform()
    platform.invoke("resize", {"width": 1})
    tb.clock.advance(3 * SEC)
    platform.scale_down()
    results = []

    def task():
        r = yield from platform.invoke_task("resize", {"width": 5})
        results.append(r)

    tb.scheduler.spawn(task())
    tb.scheduler.run_until_idle()
    assert results == [{"ok": 10}]
    assert tb.costs.count("faas_cold_start") == 1
    assert tb.costs.count("faas_snapshot_restore") == 1


# -- satellite: mid-yield termination retry ------------------------------------------


def test_invoke_task_retries_when_instance_dies_mid_yield():
    tb = Testbed()
    platform = VHivePlatform(tb)
    platform.deploy("resize", lambda p: {"ok": p["width"] * 2})
    results = []

    def task():
        r = yield from platform.invoke_task("resize", {"width": 3})
        results.append(r)

    def saboteur():
        # Fires during the cold-start yield: the instance the task
        # resolved is scaled down under it.
        instance = platform.live_instances()[0]
        instance.last_used_ns -= platform.IDLE_TIMEOUT_NS
        platform.scale_down()

    spawned = tb.scheduler.spawn(task())
    tb.scheduler.after(MSEC, saboteur)
    tb.scheduler.run(spawned)
    assert results == [{"ok": 6}]
    # The handler never ran on the terminated instance: a retry
    # re-acquired (and re-booted) a live one.
    assert tb.costs.count("faas_cold_start") == 2
    assert tb.costs.count("faas_invoke_retry") == 1
    assert any("terminated mid-invoke; retrying resize" in l.message
               for l in platform.logs)
    executed_on = [l.instance_id for l in platform.logs if "invoke ok" in l.message]
    assert executed_on == ["inst-2"]
    assert not platform.instance("inst-2").terminated


def test_invoke_task_gives_up_after_max_retries():
    tb = Testbed()
    platform = VHivePlatform(tb)
    platform.deploy("f", lambda p: p)
    platform.IDLE_TIMEOUT_NS = 50 * MSEC       # every cold boot outlives it
    platform.start_autoscaler(tb.scheduler, period_ns=60 * MSEC)
    results = []

    def task():
        r = yield from platform.invoke_task("f", {})
        results.append(r)

    spawned = tb.scheduler.spawn(task())
    tb.scheduler.run(spawned)
    platform.stop_autoscaler()
    assert results == [None]                    # logged, not raised
    assert tb.costs.count("faas_invoke_retry") == platform.MAX_INVOKE_RETRIES + 1
    assert any("gave up invoking f" in l.message for l in platform.logs)


# -- satellite: terminated-instance reaping -------------------------------------------


def test_scale_down_reaps_terminated_instances():
    tb = Testbed()
    platform = VHivePlatform(tb)
    platform.deploy("f", lambda p: p)
    platform.invoke("f", {})
    (instance_id,) = [i.instance_id for i in platform.live_instances()]
    tb.clock.advance(3 * SEC)
    assert platform.scale_down() == [instance_id]
    # Reaped from the scannable table, tombstone still resolvable.
    assert instance_id not in platform._instances
    tombstone = platform.instance(instance_id)
    assert tombstone.terminated
    assert tombstone.hypervisor is None         # VM graph released
    # Repeated churn never grows the live table.
    for _ in range(5):
        platform.invoke("f", {})
        tb.clock.advance(3 * SEC)
        platform.scale_down()
    assert len(platform._instances) == 0
    assert len(platform._retired) == 6


def test_debugger_too_late_still_works_after_reaping():
    tb = Testbed()
    platform = VHivePlatform(tb)
    platform.deploy("f", lambda p: p["missing"])
    platform.invoke("f", {})                    # logs the ERROR
    tb.clock.advance(3 * SEC)
    platform.scale_down()
    with pytest.raises(VmshError, match="scaled down"):
        ServerlessDebugger(platform).debug_shell()


# -- satellite: sector-aligned backend writes ----------------------------------------


def test_mapped_image_backend_rejects_torn_sector():
    backend = MappedImageBackend(CostModel(Clock()), bytes(4 * SECTOR_SIZE))
    with pytest.raises(VirtioError, match="not a sector multiple"):
        backend.write(0, b"torn")
    with pytest.raises(VirtioError, match="not a sector multiple"):
        backend.write(0, b"\x00" * (SECTOR_SIZE + 1))
    with pytest.raises(VirtioError, match="not a sector multiple"):
        backend.write(0, b"")
    backend.write(1, b"\xaa" * SECTOR_SIZE)     # aligned write is fine
    assert backend.read(1, 1) == b"\xaa" * SECTOR_SIZE


def test_raw_disk_backend_rejects_torn_sector():
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition())
    backend = next(d.backend for d in hv.devices() if hasattr(d, "backend"))
    with pytest.raises(VirtioError, match="not a sector multiple"):
        backend.write(0, b"short")
    backend.write(0, b"\xbb" * SECTOR_SIZE)
    assert backend.read(0, 1) == b"\xbb" * SECTOR_SIZE
