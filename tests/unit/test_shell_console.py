"""Guest shell built-ins and the tty layer."""

import pytest

from repro.guestos.console import GuestShell, GuestTty
from repro.guestos.fs import Filesystem
from repro.guestos.process import Credentials, GuestProcess
from repro.guestos.vfs import MountNamespace, Vfs
from repro.testbed import Testbed


@pytest.fixture()
def shell():
    ns = MountNamespace()
    vfs = Vfs(ns)
    vfs.mount(Filesystem("ext4"), "/")
    vfs.makedirs("/bin")
    vfs.makedirs("/etc")
    vfs.write_file("/bin/tool", b"#!SIMELF:shell\n")
    vfs.write_file("/etc/shadow", b"root:$5$oldhash:1::\nalice:$5$x:1::\n")
    process = GuestProcess("sh", ns, creds=Credentials(uid=7, gid=8))
    return GuestShell(process)


def test_echo(shell):
    assert shell.execute("echo one two") == "one two"


def test_empty_line(shell):
    assert shell.execute("   ") == ""


def test_unknown_command(shell):
    assert shell.execute("frobnicate") == "sh: frobnicate: not found"


def test_external_lookup_in_path(shell):
    assert "executed from /bin/tool" in shell.execute("tool")


def test_cat_and_ls(shell):
    shell.process.vfs.write_file("/etc/motd", b"welcome\n")
    assert shell.execute("cat /etc/motd") == "welcome"
    assert "etc" in shell.execute("ls /")


def test_cat_missing_file_reports_error(shell):
    out = shell.execute("cat /no/such")
    assert out.startswith("cat: ENOENT")


def test_id_reflects_credentials(shell):
    assert shell.execute("id") == "uid=7 gid=8"


def test_mount_lists_namespace(shell):
    out = shell.execute("mount")
    assert "ext4 on / type ext4" in out


def test_chpasswd_updates_shadow(shell):
    out = shell.execute("chpasswd alice:newpw")
    assert "updated" in out
    shadow = shell.process.vfs.read_file("/etc/shadow").decode()
    alice = [l for l in shadow.splitlines() if l.startswith("alice:")][0]
    assert "$5$x" not in alice


def test_chpasswd_unknown_user(shell):
    assert "not found" in shell.execute("chpasswd bob:pw")


def test_chpasswd_bad_syntax(shell):
    assert "expected" in shell.execute("chpasswd nope")


def test_sha256sum(shell):
    shell.process.vfs.write_file("/data", b"abc")
    out = shell.execute("sha256sum /data")
    assert out.startswith(
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_history_records(shell):
    shell.execute("echo a")
    shell.execute("echo b")
    assert shell.history == ["echo a", "echo b"]


def test_ps_needs_kernel(shell):
    assert shell.execute("ps") == "ps: no kernel access"


def test_ps_lists_guest_processes():
    tb = Testbed()
    hv = tb.launch_qemu()
    guest = hv.guest
    process = GuestProcess("monitor-sh", guest.root_ns)
    shell = GuestShell(process, kernel=guest)
    out = shell.execute("ps")
    assert "init" in out
    assert "PID" in out


def test_tty_line_buffering():
    outputs = []
    tty = GuestTty(None, write_out=outputs.append)
    ns = MountNamespace()
    vfs = Vfs(ns)
    vfs.mount(Filesystem("ext4"), "/")
    shell = GuestShell(GuestProcess("sh", ns))
    tty.connect_shell(shell)
    tty.input_bytes(b"echo par")
    assert outputs == []                 # no newline yet
    tty.input_bytes(b"tial\n")
    assert outputs == [b"partial\n"]


def test_tty_multiple_lines_in_one_write():
    outputs = []
    tty = GuestTty(None, write_out=outputs.append)
    ns = MountNamespace()
    vfs = Vfs(ns)
    vfs.mount(Filesystem("ext4"), "/")
    tty.connect_shell(GuestShell(GuestProcess("sh", ns)))
    tty.input_bytes(b"echo a\necho b\n")
    assert outputs == [b"a\n", b"b\n"]


def test_df(shell):
    out = shell.execute("df /")
    assert "blocks used" in out
