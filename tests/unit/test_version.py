"""Kernel versions and compatibility eras (§6.2)."""

import pytest

from repro.guestos.version import (
    ALL_TESTED_VERSIONS,
    DEVELOPMENT_VERSION,
    KernelVersion,
    LTS_VERSIONS,
)


def test_parse_variants():
    assert KernelVersion.parse("v5.10") == KernelVersion(5, 10)
    assert KernelVersion.parse("4.19") == KernelVersion(4, 19)
    assert KernelVersion.parse("5.10.42") == KernelVersion(5, 10)


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        KernelVersion.parse("five.ten")
    with pytest.raises(ValueError):
        KernelVersion.parse("5")


def test_ordering():
    assert KernelVersion(4, 9) < KernelVersion(4, 14)
    assert KernelVersion(4, 19) < KernelVersion(5, 4)
    assert sorted(ALL_TESTED_VERSIONS) == ALL_TESTED_VERSIONS


def test_ksymtab_layout_changed_twice():
    """'The memory layout of kernel symbols changed twice' (§6.2)."""
    layouts = [v.ksymtab_layout for v in LTS_VERSIONS]
    transitions = sum(1 for a, b in zip(layouts, layouts[1:]) if a != b)
    assert transitions == 2
    assert KernelVersion(4, 14).ksymtab_layout == "absolute"
    assert KernelVersion(4, 19).ksymtab_layout == "prel32"
    assert KernelVersion(5, 4).ksymtab_layout == "prel32_ns"


def test_kernel_rw_variant_split():
    """kernel_read/kernel_write changed at 4.14 (2 of the functions)."""
    assert KernelVersion(4, 9).kernel_rw_variant == "pos_second"
    assert KernelVersion(4, 14).kernel_rw_variant == "pos_pointer"
    assert KernelVersion(5, 10).kernel_rw_variant == "pos_pointer"


def test_two_of_four_structs_conditioned():
    """2 of the 4 structures need version conditioning (§6.2)."""
    old, new = KernelVersion(4, 4), KernelVersion(5, 10)
    conditioned = 0
    if old.pdev_info_era != new.pdev_info_era:
        conditioned += 1
    if old.console_cfg_era != new.console_cfg_era:
        conditioned += 1
    assert conditioned == 2


def test_banner_contains_version():
    banner = KernelVersion(5, 4).banner()
    assert banner.startswith("Linux version 5.4.0")


def test_tested_versions_cover_table1():
    names = {str(v) for v in ALL_TESTED_VERSIONS}
    assert {"v5.10", "v5.4", "v4.19", "v4.14", "v4.9", "v4.4"} <= names
    assert str(DEVELOPMENT_VERSION) == "v5.12"
