"""The five simulated hypervisors."""

import pytest

from repro.errors import KvmError
from repro.hypervisors import (
    ALL_HYPERVISOR_CLASSES,
    CloudHypervisor,
    Crosvm,
    Firecracker,
    Kvmtool,
    Qemu,
)
from repro.testbed import Testbed
from repro.units import MiB


def test_all_five_launch_and_boot():
    for cls in ALL_HYPERVISOR_CLASSES:
        tb = Testbed()
        hv = tb.launch(cls)
        assert hv.guest is not None and hv.guest.booted
        assert hv.guest.panicked is None


def test_vcpu_thread_naming_conventions():
    tb = Testbed()
    expectations = {
        Qemu: "CPU 0/KVM",
        Kvmtool: "kvm-vcpu-0",
        Firecracker: "fc_vcpu 0",
        Crosvm: "crosvm_vcpu0",
    }
    for cls, expected in expectations.items():
        hv = tb.launch(cls)
        names = [t.name for t in hv.process.threads]
        assert expected in names, (cls.NAME, names)


def test_double_launch_rejected():
    tb = Testbed()
    hv = tb.launch_qemu()
    with pytest.raises(KvmError):
        hv.launch()


def test_disk_must_be_added_before_launch():
    tb = Testbed()
    hv = tb.launch_qemu()
    with pytest.raises(KvmError):
        hv.add_disk(tb.nvme_partition(16 * MiB))


def test_qemu_9p_share_requires_launch():
    tb = Testbed()
    hv = Qemu(tb.host, tb.kvm)
    with pytest.raises(RuntimeError):
        hv.create_9p_share()


def test_non_qemu_has_no_9p():
    tb = Testbed()
    hv = tb.launch_kvmtool()
    with pytest.raises(KvmError):
        hv.create_9p_share()


def test_api_capability_flags():
    assert Qemu.HAS_DEBUGGER_API and Qemu.HAS_HOTPLUG_API
    assert Crosvm.HAS_DEBUGGER_API and not Crosvm.HAS_HOTPLUG_API
    assert not Firecracker.HAS_DEBUGGER_API and not Firecracker.HAS_HOTPLUG_API
    assert not Kvmtool.HAS_DEBUGGER_API
    assert CloudHypervisor.VIRTIO_TRANSPORT == "pci"


def test_guest_sees_hypervisor_disk_at_boot():
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition(16 * MiB))
    assert "vda" in hv.guest.block_devices
    assert any("virtio-blk vda" in line for line in hv.guest.klog)


def test_two_disks_two_devices():
    tb = Testbed()
    hv = Qemu(tb.host, tb.kvm)
    hv.add_disk(tb.nvme_partition(16 * MiB), "a")
    hv.add_disk(tb.nvme_partition(16 * MiB), "b")
    hv.launch()
    assert set(hv.guest.block_devices) >= {"vda", "vdb"}


def test_unclaimed_mmio_is_left_unhandled():
    """A VMM must not claim exits outside its windows — that is what
    lets VMSH interpose without conflicts."""
    tb = Testbed()
    hv = tb.launch_qemu()
    vcpu = hv.vm.vcpus[0]
    with pytest.raises(KvmError, match="did not handle"):
        hv.vm.mmio_access(vcpu, True, 0xCAFE0000, 4, 1)


def test_firecracker_filters_are_per_thread():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=True)
    filters = {t.name: t.seccomp_filter for t in hv.process.threads}
    assert filters["fc_vcpu 0"] is not None
    assert filters["firecracker"] is not None
    assert filters["fc_vcpu 0"].name != filters["firecracker"].name


def test_guest_ram_is_one_anonymous_mapping():
    tb = Testbed()
    hv = tb.launch_qemu(ram_bytes=128 * MiB)
    ram = [m for m in hv.process.address_space.mappings() if m.name == "guest-ram"]
    assert len(ram) == 1
    assert ram[0].size == 128 * MiB
