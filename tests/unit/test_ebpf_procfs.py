"""eBPF memslot snooper and the /proc view."""

import pytest

from repro.errors import NoSuchProcessError
from repro.host.ebpf import MemslotSnooper
from repro.host.kernel import HostKernel
from repro.host.procfs import ProcFs
from repro.kvm.api import KvmSystem
from repro.units import MiB


@pytest.fixture()
def vm_setup():
    host = HostKernel()
    hv = host.spawn_process("qemu")
    kvm_fd = hv.fds.install(KvmSystem(host))
    vm_fd = host.syscall(hv.main_thread, "ioctl", kvm_fd, "KVM_CREATE_VM")
    hva = host.syscall(hv.main_thread, "mmap", 64 * MiB, "guest-ram")
    host.syscall(
        hv.main_thread, "ioctl", vm_fd, "KVM_SET_USER_MEMORY_REGION",
        {"slot": 0, "gpa": 0, "size": 64 * MiB, "hva": hva},
    )
    return host, hv, vm_fd, hva


def test_snooper_captures_on_vm_ioctl(vm_setup):
    host, hv, vm_fd, hva = vm_setup
    vmsh = host.spawn_process("vmsh")
    snooper = MemslotSnooper(host, vmsh)
    snooper.attach()
    assert snooper.read_map() == []        # nothing until an ioctl fires
    host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CHECK_EXTENSION", "KVM_CAP_IRQFD")
    records = snooper.read_map()
    assert len(records) == 1
    assert records[0].gpa == 0
    assert records[0].size == 64 * MiB
    assert records[0].hva == hva
    snooper.detach()


def test_snooper_map_drains(vm_setup):
    host, hv, vm_fd, _ = vm_setup
    vmsh = host.spawn_process("vmsh")
    snooper = MemslotSnooper(host, vmsh)
    snooper.attach()
    host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CHECK_EXTENSION", "X")
    assert snooper.read_map() != []
    assert snooper.read_map() == []
    snooper.detach()


def test_detached_snooper_sees_nothing(vm_setup):
    host, hv, vm_fd, _ = vm_setup
    vmsh = host.spawn_process("vmsh")
    snooper = MemslotSnooper(host, vmsh)
    snooper.attach()
    snooper.detach()
    host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CHECK_EXTENSION", "X")
    assert snooper.read_map() == []


def test_procfs_lists_processes(vm_setup):
    host, hv, _, _ = vm_setup
    procfs = ProcFs(host)
    assert hv.pid in procfs.pids()
    assert procfs.comm(hv.pid) == "qemu"


def test_procfs_fd_links_show_kvm(vm_setup):
    host, hv, vm_fd, _ = vm_setup
    procfs = ProcFs(host)
    links = procfs.fd_links(hv.pid)
    assert links[vm_fd] == "anon_inode:kvm-vm"
    vcpu_fd = host.syscall(hv.main_thread, "ioctl", vm_fd, "KVM_CREATE_VCPU")
    assert procfs.fd_links(hv.pid)[vcpu_fd] == "anon_inode:kvm-vcpu:0"


def test_procfs_tasks(vm_setup):
    host, hv, _, _ = vm_setup
    hv.spawn_thread("CPU 0/KVM")
    procfs = ProcFs(host)
    tids = procfs.tasks(hv.pid)
    assert len(tids) == 2
    assert procfs.task_comm(hv.pid, tids[1]) == "CPU 0/KVM"


def test_procfs_dead_process(vm_setup):
    host, hv, _, _ = vm_setup
    procfs = ProcFs(host)
    host.exit_process(hv.pid)
    assert hv.pid not in procfs.pids()
    with pytest.raises(NoSuchProcessError):
        procfs.fd_links(hv.pid)
