"""Virtual clock and stopwatch."""

import pytest

from repro.sim.clock import Clock, Stopwatch, TimeSeries


def test_clock_starts_at_zero():
    assert Clock().now == 0


def test_clock_advances():
    clock = Clock()
    assert clock.advance(100) == 100
    assert clock.advance(50) == 150
    assert clock.now == 150


def test_clock_rejects_negative_advance():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        Clock(start_ns=-5)


def test_clock_observers_fire():
    clock = Clock()
    seen = []
    clock.subscribe(lambda old, new: seen.append((old, new)))
    clock.advance(10)
    clock.advance(20)
    assert seen == [(0, 10), (10, 30)]


def test_stopwatch_measures_span():
    clock = Clock()
    clock.advance(5)
    with Stopwatch(clock) as sw:
        clock.advance(100)
    clock.advance(999)  # after the span: must not count
    assert sw.elapsed == 100


def test_stopwatch_live_reading():
    clock = Clock()
    sw = Stopwatch(clock)
    with sw:
        clock.advance(42)
        assert sw.elapsed == 42


def test_timeseries_mean():
    clock = Clock()
    series = TimeSeries(clock)
    series.record(1.0)
    clock.advance(10)
    series.record(3.0)
    assert series.mean() == 2.0
    assert series.values() == [1.0, 3.0]
    assert series.samples[1][0] == 10


def test_timeseries_empty_mean_raises():
    with pytest.raises(ValueError):
        TimeSeries(Clock()).mean()


def test_clock_unsubscribe_stops_observer():
    clock = Clock()
    seen = []
    observer = lambda old, new: seen.append(new)  # noqa: E731
    clock.subscribe(observer)
    clock.advance(10)
    clock.unsubscribe(observer)
    clock.advance(10)
    assert seen == [10]


def test_clock_unsubscribe_unknown_is_noop():
    Clock().unsubscribe(lambda old, new: None)


def test_timeseries_follow_samples_every_advance():
    clock = Clock()
    series = TimeSeries(clock)
    count = {"value": 1}
    series.follow(lambda: count["value"])
    assert series.following
    clock.advance(5)
    count["value"] = 3
    clock.advance(5)
    assert series.samples == [(5, 1.0), (10, 3.0)]


def test_timeseries_close_detaches_observer():
    clock = Clock()
    series = TimeSeries(clock)
    series.follow(lambda: 1.0)
    clock.advance(1)
    series.close()
    series.close()  # idempotent
    clock.advance(1)
    assert not series.following
    assert len(series.samples) == 1


def test_timeseries_follow_twice_raises():
    series = TimeSeries(Clock())
    series.follow(lambda: 0.0)
    with pytest.raises(ValueError):
        series.follow(lambda: 0.0)
