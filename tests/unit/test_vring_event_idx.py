"""EVENT_IDX ring machinery: layout, need_event math, suppression,
batch publish, and 16-bit index wraparound.

The wraparound tests drive a queue past 65535 submissions so every
running index — ``DriverRing._last_used``, ``DeviceRing._last_avail``,
``DeviceRing._used_idx`` — wraps through 0xFFFF, asserting that no
completion is lost or duplicated on either side of the boundary, with
and without EVENT_IDX negotiated.
"""

import pytest

from repro.mem.physmem import PhysicalMemory
from repro.units import MiB
from repro.virtio.vring import (
    AVAIL_HEADER,
    USED_ELEM_SIZE,
    USED_HEADER,
    DeviceRing,
    DriverRing,
    avail_ring_size,
    used_ring_size,
    vring_need_event,
)

from tests.unit.test_vring import DirectMemory


def _rings(size: int, event_idx: bool):
    mem = DirectMemory(PhysicalMemory(1 * MiB))
    desc, avail, used = 0x1000, 0x8000, 0x9000
    driver = DriverRing(mem, desc, avail, used, size, event_idx=event_idx)
    device = DeviceRing(mem, desc, avail, used, size, event_idx=event_idx)
    return mem, driver, device


# -- layout ------------------------------------------------------------------


def test_ring_sizes_unchanged_without_event_idx():
    assert avail_ring_size(8) == AVAIL_HEADER + 16
    assert used_ring_size(8) == USED_HEADER + 8 * USED_ELEM_SIZE


def test_ring_sizes_grow_by_one_u16_with_event_idx():
    assert avail_ring_size(8, event_idx=True) == avail_ring_size(8) + 2
    assert used_ring_size(8, event_idx=True) == used_ring_size(8) + 2


def test_event_field_addresses():
    _mem, driver, device = _rings(8, event_idx=True)
    assert driver.used_event_gpa == driver.avail_gpa + AVAIL_HEADER + 2 * 8
    assert driver.avail_event_gpa == driver.used_gpa + USED_HEADER + 8 * USED_ELEM_SIZE
    assert device.used_event_gpa == driver.used_event_gpa
    assert device.avail_event_gpa == driver.avail_event_gpa


# -- vring_need_event (VirtIO 1.1 2.6.7.2) ----------------------------------


@pytest.mark.parametrize(
    "event, new, old, expected",
    [
        (0, 1, 0, True),            # event exactly at the crossing
        (1, 1, 0, False),           # threshold not yet reached
        (3, 8, 0, True),            # event inside the window
        (7, 8, 0, True),            # event at the window's far edge
        (8, 8, 0, False),           # event not yet crossed (new == event)
        (0xFFFE, 0x0001, 0xFFFD, True),     # window straddles the wrap
        (0x0002, 0x0001, 0xFFFD, False),    # event past a wrapped window
    ],
)
def test_need_event_truth_table(event, new, old, expected):
    assert vring_need_event(event, new, old) is expected


# -- suppression and coalescing ----------------------------------------------


def test_kick_prepare_always_true_without_event_idx():
    _mem, driver, _device = _rings(8, event_idx=False)
    driver.add_chain([(0x4000, 64, False)])
    assert driver.kick_prepare() is True


def test_kick_suppressed_when_device_already_polled():
    """avail_event covering un-kicked chains means: no doorbell needed."""
    _mem, driver, device = _rings(8, event_idx=True)
    driver.add_chain([(0x4000, 64, False)])
    assert driver.kick_prepare() is True       # device has seen nothing
    driver.note_kick()
    # The device polls on its own and publishes how far it looked.
    heads = device.pop_available()
    device.push_used_batch([(heads[0], 0)])
    driver.collect_used()
    driver.add_chain([(0x4000, 64, False)])
    assert driver.kick_prepare() is True       # new chain after its poll
    driver.note_kick()
    popped = device.pop_available()            # device picks it up unkicked
    assert len(popped) == 1
    device.push_used_batch([(popped[0], 0)])
    # avail_event now covers everything published: a would-be kick for
    # the already-consumed window is suppressed.
    assert driver.kick_prepare() is False


def test_interrupt_coalesced_until_used_event_threshold():
    """Sub-batches below the driver's used_event target raise no irq."""
    _mem, driver, device = _rings(8, event_idx=True)
    heads = [driver.add_chain([(0x4000, 64, False)]) for _ in range(4)]
    driver.set_used_event((driver.last_used + 3) & 0xFFFF)  # want the 4th
    driver.note_kick()
    assert device.pop_available() == heads
    assert device.push_used_batch([(heads[0], 0)]) is False
    assert device.push_used_batch([(heads[1], 0), (heads[2], 0)]) is False
    assert device.push_used_batch([(heads[3], 0)]) is True
    completed = driver.collect_used()
    assert [head for head, _ in completed] == heads


def test_whole_batch_publish_interrupts_once():
    _mem, driver, device = _rings(8, event_idx=True)
    heads = [driver.add_chain([(0x4000, 64, False)]) for _ in range(4)]
    driver.set_used_event((driver.last_used + 3) & 0xFFFF)
    assert device.pop_available() == heads
    assert device.push_used_batch([(h, 0) for h in heads]) is True
    assert len(driver.collect_used()) == 4


def test_collect_used_rearms_for_next_completion():
    mem, driver, device = _rings(8, event_idx=True)
    head = driver.add_chain([(0x4000, 64, False)])
    device.pop_available()
    assert device.push_used_batch([(head, 0)]) is True
    driver.collect_used()
    # Re-armed to interrupt on the very next completion.
    assert mem.read_u16(driver.used_event_gpa) == driver.last_used


def test_push_used_batch_without_event_idx_always_interrupts():
    _mem, driver, device = _rings(8, event_idx=False)
    heads = [driver.add_chain([(0x4000, 64, False)]) for _ in range(3)]
    assert device.pop_available() == heads
    assert device.push_used_batch([(h, 0) for h in heads]) is True
    assert len(driver.collect_used()) == 3


def test_empty_batch_is_a_noop():
    _mem, _driver, device = _rings(8, event_idx=True)
    assert device.push_used_batch([]) is False


# -- 16-bit wraparound (the satellite) ---------------------------------------


def _pump_past_wrap(event_idx: bool):
    size, batch = 64, 64
    rounds = (0x10000 // batch) + 2            # 65536 + 128 submissions
    _mem, driver, device = _rings(size, event_idx)
    total = 0
    for _ in range(rounds):
        heads = [driver.add_chain([(0x4000, 64, False)]) for _ in range(batch)]
        if event_idx:
            driver.set_used_event((driver.last_used + batch - 1) & 0xFFFF)
        driver.note_kick()
        popped = device.pop_available()
        assert popped == heads, "avail entries lost or reordered"
        irq = device.push_used_batch([(h, len(heads)) for h in popped])
        assert irq is True                      # threshold is the batch tail
        completed = driver.collect_used()
        assert [h for h, _ in completed] == heads, "completion lost/duplicated"
        total += batch
    assert total > 0xFFFF
    # Every running index wrapped and re-converged.
    assert driver._avail_idx == total & 0xFFFF
    assert driver._last_used == total & 0xFFFF
    assert device._last_avail == total & 0xFFFF
    assert device._used_idx == total & 0xFFFF
    assert driver.free_descriptors == size      # all descriptors recycled
    assert not driver._chain_heads


def test_wraparound_with_event_idx():
    _pump_past_wrap(event_idx=True)


def test_wraparound_without_event_idx():
    _pump_past_wrap(event_idx=False)


def test_interrupt_threshold_across_wrap_boundary():
    """A used_event target sitting past 0xFFFF still fires exactly once."""
    size = 64
    _mem, driver, device = _rings(size, event_idx=True)
    # Walk the indices to just short of the wrap.
    while driver.last_used != 0xFFFE:
        head = driver.add_chain([(0x4000, 64, False)])
        driver.note_kick()
        device.pop_available()
        device.push_used_batch([(head, 0)])
        driver.collect_used()
    heads = [driver.add_chain([(0x4000, 64, False)]) for _ in range(4)]
    driver.set_used_event((driver.last_used + 3) & 0xFFFF)   # target 0x0001
    driver.note_kick()
    assert device.pop_available() == heads
    assert device.push_used_batch([(heads[0], 0)]) is False  # 0xFFFF
    assert device.push_used_batch([(heads[1], 0)]) is False  # 0x0000
    assert device.push_used_batch([(heads[2], 0)]) is False  # 0x0001
    assert device.push_used_batch([(heads[3], 0)]) is True   # crosses target
    assert len(driver.collect_used()) == 4
    assert device._used_idx == 0x0002
