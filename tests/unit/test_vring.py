"""Split virtqueues: descriptor chains, avail/used rings, batching."""

import pytest

from repro.errors import VirtioError
from repro.kvm.api import KvmSystem
from repro.host.kernel import HostKernel
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB
from repro.virtio.vring import (
    DESC_SIZE,
    DeviceRing,
    DriverRing,
    avail_ring_size,
    desc_table_size,
    used_ring_size,
)


class DirectMemory:
    """Adapter giving PhysicalMemory the accessor interface."""

    def __init__(self, mem: PhysicalMemory):
        self._mem = mem

    def read(self, gpa, length):
        return self._mem.read(gpa, length)

    def write(self, gpa, data):
        self._mem.write(gpa, data)

    def read_u16(self, gpa):
        return self._mem.read_u16(gpa)

    def read_u32(self, gpa):
        return self._mem.read_u32(gpa)

    def read_u64(self, gpa):
        return self._mem.read_u64(gpa)

    def write_u16(self, gpa, value):
        self._mem.write_u16(gpa, value)

    def write_u32(self, gpa, value):
        self._mem.write_u32(gpa, value)

    def write_u64(self, gpa, value):
        self._mem.write_u64(gpa, value)


@pytest.fixture()
def rings():
    mem = DirectMemory(PhysicalMemory(1 * MiB))
    size = 8
    desc, avail, used = 0x1000, 0x2000, 0x3000
    driver = DriverRing(mem, desc, avail, used, size)
    device = DeviceRing(mem, desc, avail, used, size)
    return mem, driver, device


def test_ring_sizes():
    assert desc_table_size(8) == 8 * DESC_SIZE
    assert avail_ring_size(8) == 4 + 16
    assert used_ring_size(8) == 4 + 64


def test_queue_size_must_be_power_of_two():
    mem = DirectMemory(PhysicalMemory(1 * MiB))
    with pytest.raises(VirtioError):
        DriverRing(mem, 0x1000, 0x2000, 0x3000, 6)


def test_chain_roundtrip(rings):
    mem, driver, device = rings
    head = driver.add_chain([(0x10000, 100, False), (0x20000, 200, True)])
    heads = device.pop_available()
    assert heads == [head]
    chain = device.read_chain(head)
    assert [(d.addr, d.length, d.device_writable) for d in chain] == [
        (0x10000, 100, False),
        (0x20000, 200, True),
    ]
    device.push_used(head, 200)
    completed = driver.collect_used()
    assert completed == [(head, 200)]


def test_descriptors_recycle(rings):
    _, driver, device = rings
    for round_ in range(30):  # 30 rounds of 2-desc chains on an 8-deep queue
        head = driver.add_chain([(0x1000, 1, False), (0x2000, 1, True)])
        assert device.pop_available() == [head]
        device.push_used(head, 0)
        driver.collect_used()
    assert driver.free_descriptors == 8


def test_queue_full(rings):
    _, driver, _ = rings
    for _ in range(4):
        driver.add_chain([(0x1000, 1, False), (0x2000, 1, True)])
    with pytest.raises(VirtioError, match="queue full"):
        driver.add_chain([(0x1000, 1, False)])


def test_empty_chain_rejected(rings):
    _, driver, _ = rings
    with pytest.raises(VirtioError):
        driver.add_chain([])


def test_multiple_chains_one_notify(rings):
    _, driver, device = rings
    h1 = driver.add_chain([(0x1000, 1, False)])
    h2 = driver.add_chain([(0x2000, 1, False)])
    assert device.pop_available() == [h1, h2]
    assert device.pop_available() == []


def test_batched_table_snapshot(rings):
    _, driver, device = rings
    head = driver.add_chain([(0xAAAA000, 4, False), (0xBBBB000, 8, True)])
    table = device.read_table()
    chain = device.read_chain(head, table)
    assert chain[0].addr == 0xAAAA000
    assert chain[1].addr == 0xBBBB000


def test_device_completion_of_unknown_head_rejected(rings):
    mem, driver, device = rings
    head = driver.add_chain([(0x1000, 1, False)])
    device.pop_available()
    wrong = (head + 3) % 8
    device.push_used(wrong, 0)  # not the published head
    with pytest.raises(VirtioError, match="unknown chain"):
        driver.collect_used()


def test_index_wraparound(rings):
    """avail/used indices are u16 running counters that must wrap."""
    _, driver, device = rings
    driver._avail_idx = 0xFFFE
    device._last_avail = 0xFFFE
    device._used_idx = 0xFFFE
    driver._last_used = 0xFFFE
    for _ in range(4):  # crosses the 0xFFFF -> 0 boundary
        head = driver.add_chain([(0x1000, 1, False)])
        assert device.pop_available() == [head]
        device.push_used(head, 1)
        assert driver.collect_used() == [(head, 1)]
