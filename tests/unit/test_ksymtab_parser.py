"""VMSH's ksymtab binary analysis: all layouts, consistency checks."""

import pytest

from repro.core.kaslr import KernelLocation, find_kernel
from repro.core.ksymtab import parse_ksymtab
from repro.errors import KernelNotFoundError, SideloadError
from repro.guestos.kfunctions import REQUIRED_KERNEL_FUNCTIONS
from repro.guestos.version import ALL_TESTED_VERSIONS, KernelVersion
from repro.testbed import Testbed


def _gateway_for(version: KernelVersion):
    """Boot a guest and build a VMSH-side gateway the honest way."""
    tb = Testbed()
    hv = tb.launch_qemu(guest_version=version)
    from repro.core.gateway import GuestMemoryGateway
    from repro.host.ebpf import MemslotSnooper

    vmsh = tb.host.spawn_process("vmsh-test")
    snooper = MemslotSnooper(tb.host, vmsh)
    snooper.attach()
    tb.host.syscall(hv.process.main_thread, "ioctl", hv.vm_fd, "KVM_CHECK_EXTENSION", "X")
    records = snooper.read_map()
    snooper.detach()
    gateway = GuestMemoryGateway(tb.host, vmsh.main_thread, hv.pid, records)
    gateway.set_cr3(hv.guest.cr3)
    return tb, hv, gateway


@pytest.mark.parametrize("version", ALL_TESTED_VERSIONS, ids=str)
def test_parser_recovers_all_required_symbols(version):
    tb, hv, gateway = _gateway_for(version)
    location = find_kernel(gateway)
    assert location.vbase == hv.guest.image.vbase
    parsed = parse_ksymtab(gateway, location)
    assert parsed.layout == version.ksymtab_layout
    for name in REQUIRED_KERNEL_FUNCTIONS:
        assert parsed.symbols[name] == hv.guest.image.symbols[name]
    assert parsed.symbols["linux_banner"] == hv.guest.image.symbols["linux_banner"]


def test_parser_layout_detection_is_blind():
    """The parser must not be told the layout; it must *discover* it."""
    results = set()
    for version in (KernelVersion(4, 4), KernelVersion(4, 19), KernelVersion(5, 10)):
        _, _, gateway = _gateway_for(version)
        location = find_kernel(gateway)
        results.add(parse_ksymtab(gateway, location).layout)
    assert results == {"absolute", "prel32", "prel32_ns"}


def test_kernel_not_found_with_empty_cr3():
    tb, hv, gateway = _gateway_for(KernelVersion(5, 10))
    # Point CR3 at an empty page table root.
    empty_root = hv.guest.alloc_guest_pages(1)
    for i in range(512):
        gateway.phys.write_u64(empty_root + i * 8, 0)
    gateway.set_cr3(empty_root)
    with pytest.raises(KernelNotFoundError):
        find_kernel(gateway)


def test_parser_rejects_image_without_symbols():
    tb, hv, gateway = _gateway_for(KernelVersion(5, 10))
    guest = hv.guest
    # Shred the .ksymtab (but keep strings): no consistent run remains.
    sections = guest.image.sections
    guest.write_virt(sections.ksymtab_vaddr, b"\xff" * sections.ksymtab_size)
    location = find_kernel(gateway)
    with pytest.raises(SideloadError, match="no consistent ksymtab"):
        parse_ksymtab(gateway, location)


def test_require_missing_symbol():
    from repro.errors import SymbolResolutionError

    tb, hv, gateway = _gateway_for(KernelVersion(5, 10))
    parsed = parse_ksymtab(gateway, find_kernel(gateway))
    with pytest.raises(SymbolResolutionError):
        parsed.require("this_symbol_does_not_exist")


def test_find_kernel_reports_image_extent():
    tb, hv, gateway = _gateway_for(KernelVersion(5, 10))
    location = find_kernel(gateway)
    from repro.guestos.loader import KERNEL_IMAGE_SIZE

    assert location.size == KERNEL_IMAGE_SIZE
