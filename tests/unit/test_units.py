"""Unit helpers: sizes, alignment, formatting."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    PAGE_SIZE,
    fmt_size,
    fmt_time,
    page_align_down,
    page_align_up,
    pages,
    sectors,
)


def test_size_constants_are_powers():
    assert KiB == 1024
    assert MiB == 1024 * KiB
    assert GiB == 1024 * MiB


def test_pages_rounds_up():
    assert pages(0) == 0
    assert pages(1) == 1
    assert pages(PAGE_SIZE) == 1
    assert pages(PAGE_SIZE + 1) == 2
    assert pages(10 * PAGE_SIZE) == 10


def test_page_alignment():
    assert page_align_down(0) == 0
    assert page_align_down(PAGE_SIZE - 1) == 0
    assert page_align_down(PAGE_SIZE + 5) == PAGE_SIZE
    assert page_align_up(0) == 0
    assert page_align_up(1) == PAGE_SIZE
    assert page_align_up(PAGE_SIZE) == PAGE_SIZE


def test_sectors():
    assert sectors(1) == 1
    assert sectors(512) == 1
    assert sectors(513) == 2


def test_fmt_size():
    assert fmt_size(10) == "10 B"
    assert fmt_size(3 * MiB) == "3.0 MiB"
    assert fmt_size(GiB) == "1.0 GiB"


def test_fmt_time():
    assert fmt_time(500) == "500 ns"
    assert fmt_time(1500) == "1.50 us"
    assert fmt_time(2_500_000) == "2.50 ms"
    assert fmt_time(3_000_000_000) == "3.000 s"
