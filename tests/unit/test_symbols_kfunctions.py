"""Symbol section builder and kernel-function structure codecs."""

import pytest

from repro.errors import GuestPanicError
from repro.guestos.kfunctions import (
    BlockConfig,
    ConsoleConfig,
    PlatformDeviceInfo,
    PosRef,
    REQUIRED_KERNEL_FUNCTIONS,
    UmhArgs,
    expected_symbol_names,
    pack_kernel_read_args,
    pack_kernel_write_args,
)
from repro.guestos.symbols import ENTRY_SIZES, build_symbol_sections
from repro.guestos.version import KernelVersion
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB


def test_twelve_required_functions():
    assert len(REQUIRED_KERNEL_FUNCTIONS) == 12
    by_category = {}
    for name, cat in REQUIRED_KERNEL_FUNCTIONS.items():
        by_category.setdefault(cat, []).append(name)
    # "two for driver registration, four related to file IO, five
    # related to process/threads" (§5) + printk.
    assert len(by_category["driver"]) == 2
    assert len(by_category["file-io"]) == 4
    assert len(by_category["process"]) == 5
    assert len(by_category["logging"]) == 1


def test_expected_symbols_include_banner():
    names = expected_symbol_names()
    assert "linux_banner" in names
    assert "kernel_read" in names


@pytest.mark.parametrize("layout", sorted(ENTRY_SIZES))
def test_symbol_sections_roundtrip_bytes(layout):
    mem = PhysicalMemory(4 * MiB)
    vbase = 0
    symbols = {"printk": 0x1000, "kernel_read": 0x2000, "filp_open": 0x3000}
    sections = build_symbol_sections(
        symbols, layout, strings_vaddr=0x100000, ksymtab_vaddr=0x80000,
        write=mem.write,
    )
    assert sections.entry_count == 3
    strings = mem.read(0x100000, sections.strings_size)
    assert b"printk\x00" in strings
    assert sections.ksymtab_size == 3 * ENTRY_SIZES[layout]
    # First entry references the first (sorted) name: filp_open.
    if layout == "absolute":
        value = mem.read_u64(0x80000)
        name_ptr = mem.read_u64(0x80008)
    else:
        value = 0x80000 + mem.read_i32(0x80000)
        name_ptr = 0x80004 + mem.read_i32(0x80004)
    assert value == 0x3000
    name = mem.read(name_ptr, 16).split(b"\x00")[0]
    assert name == b"filp_open"


def test_prel32_overflow_detected():
    mem = PhysicalMemory(4 * MiB)
    with pytest.raises(ValueError, match="PREL32"):
        build_symbol_sections(
            {"far": 1 << 40}, "prel32", strings_vaddr=0x1000,
            ksymtab_vaddr=0x2000, write=mem.write,
        )


# -- structure codecs ------------------------------------------------------------

OLD = KernelVersion(4, 4)
NEW = KernelVersion(5, 10)


def test_pdev_info_layouts_differ():
    info = PlatformDeviceInfo(mmio_base=0xE0000000, irq=64)
    assert len(info.pack(OLD)) != len(info.pack(NEW))


@pytest.mark.parametrize("version", [OLD, NEW])
def test_pdev_info_roundtrip(version):
    info = PlatformDeviceInfo(mmio_base=0xE0001000, irq=65)
    again = PlatformDeviceInfo.unpack(info.pack(version), version)
    assert again.mmio_base == 0xE0001000
    assert again.irq == 65


def test_pdev_info_cross_version_panics():
    """Packing for the wrong kernel version must not silently work."""
    info = PlatformDeviceInfo(mmio_base=0xE0000000, irq=64)
    with pytest.raises(GuestPanicError):
        PlatformDeviceInfo.unpack(info.pack(OLD), NEW)
    with pytest.raises(GuestPanicError):
        PlatformDeviceInfo.unpack(info.pack(NEW), OLD)


@pytest.mark.parametrize("version", [OLD, NEW])
def test_console_config_roundtrip(version):
    cfg = ConsoleConfig(cols=132, rows=43)
    again = ConsoleConfig.unpack(cfg.pack(version), version)
    assert (again.cols, again.rows) == (132, 43)


def test_console_config_cross_version_panics():
    cfg = ConsoleConfig()
    with pytest.raises(GuestPanicError):
        ConsoleConfig.unpack(cfg.pack(OLD), NEW)


def test_block_config_stable_across_versions():
    cfg = BlockConfig(capacity_sectors=2048, read_only=True)
    packed_old = cfg.pack(OLD)
    packed_new = cfg.pack(NEW)
    assert packed_old == packed_new
    assert BlockConfig.unpack(packed_old, NEW).read_only is True


def test_umh_args_roundtrip():
    args = UmhArgs("/dev/.vmsh-stage2", ("--command", "/bin/sh"))
    again = UmhArgs.unpack(args.pack(NEW), OLD)
    assert again == args


def test_umh_args_malformed_panics():
    with pytest.raises(GuestPanicError):
        UmhArgs.unpack(b"\xff", NEW)


def test_kernel_rw_arg_marshalling():
    old_args = pack_kernel_read_args(OLD, 3, 100, 50)
    assert old_args == (3, 50, 100)
    new_args = pack_kernel_read_args(NEW, 3, 100, 50)
    assert new_args[0:2] == (3, 100)
    assert isinstance(new_args[2], PosRef) and new_args[2].value == 50
    old_w = pack_kernel_write_args(OLD, 3, b"xy", 7)
    assert old_w == (3, 7, b"xy")
    new_w = pack_kernel_write_args(NEW, 3, b"xy", 7)
    assert isinstance(new_w[2], PosRef)
