"""The VMSH filesystem image format."""

import pytest

from repro.errors import ImageError
from repro.guestos.blockcore import MemoryBlockDevice
from repro.guestos.pagecache import PageCache
from repro.image.fsimage import ImageSpec, build_image, mount_image, parse_toc
from repro.units import MiB, PAGE_SIZE, SECTOR_SIZE


def _device_with(image: bytes) -> MemoryBlockDevice:
    device = MemoryBlockDevice("img", max(len(image), 1 * MiB))
    device.write_sectors(0, image + b"\x00" * (-len(image) % SECTOR_SIZE))
    return device


def test_build_and_mount_roundtrip():
    spec = (
        ImageSpec()
        .add_dir("/bin")
        .add_file("/bin/sh", b"#!SIMELF:shell\n", mode=0o755)
        .add_file("/etc/config", b"key=value\n")
        .add_symlink("/sh", "/bin/sh")
    )
    image = build_image(spec)
    fs = mount_image(_device_with(image), cache=PageCache())
    from repro.guestos.vfs import MountNamespace, Vfs

    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    assert vfs.read_file("/bin/sh") == b"#!SIMELF:shell\n"
    assert vfs.read_file("/etc/config") == b"key=value\n"
    assert vfs.read_file("/sh") == b"#!SIMELF:shell\n"
    assert vfs.stat("/bin/sh")["mode"] & 0o7777 == 0o755


def test_parent_dirs_implied():
    spec = ImageSpec().add_file("/deep/ly/nested/file", b"x")
    fs = mount_image(_device_with(build_image(spec)))
    from repro.guestos.vfs import MountNamespace, Vfs

    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    assert vfs.isdir("/deep/ly/nested")


def test_multi_page_file_content():
    payload = bytes(range(256)) * 64  # 16 KiB
    spec = ImageSpec().add_file("/big.bin", payload)
    fs = mount_image(_device_with(build_image(spec)))
    from repro.guestos.vfs import MountNamespace, Vfs

    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    assert vfs.read_file("/big.bin") == payload


def test_mounted_image_takes_writes():
    spec = ImageSpec().add_file("/keep", b"original")
    image = build_image(spec, extra_space=1 * MiB)
    fs = mount_image(_device_with(image), cache=PageCache(), writable=True)
    from repro.guestos.vfs import MountNamespace, Vfs

    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    vfs.write_file("/new-file", b"written later")
    fs.sync_all()
    assert vfs.read_file("/new-file") == b"written later"
    assert vfs.read_file("/keep") == b"original"


def test_readonly_mount_rejects_writes():
    spec = ImageSpec().add_file("/f", b"x")
    fs = mount_image(_device_with(build_image(spec)), writable=False)
    from repro.errors import VfsError
    from repro.guestos.vfs import MountNamespace, Vfs

    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    with pytest.raises(VfsError, match="EROFS"):
        vfs.write_file("/f2", b"y")


def test_bad_magic_rejected():
    device = MemoryBlockDevice("junk", 1 * MiB)
    device.write_sectors(0, b"NOTANIMG" + b"\x00" * 504)
    with pytest.raises(ImageError):
        mount_image(device)


def test_relative_path_rejected():
    spec = ImageSpec()
    spec.files["relative"] = b"x"
    with pytest.raises(ImageError):
        build_image(spec)


def test_image_data_read_through_device_costs():
    """Reading image files must issue block IO, not cheat."""
    from repro.sim.clock import Clock
    from repro.sim.costs import CostModel

    costs = CostModel(Clock())
    spec = ImageSpec().add_file("/tool", b"\xaa" * (8 * PAGE_SIZE))
    fs = mount_image(
        _device_with(build_image(spec)), cache=PageCache(costs), costs=costs
    )
    from repro.guestos.vfs import MountNamespace, Vfs

    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    costs.reset_counters()
    vfs.read_file("/tool")
    assert costs.count("guest_block_submit") >= 1
