"""Guest-memory accessors: stats, vectored batching, ablation paths."""

from repro.host.ebpf import MemslotRecord
from repro.host.kernel import HostKernel
from repro.mem.physmem import PhysicalMemory
from repro.sim.clock import Clock
from repro.sim.costs import CostModel
from repro.units import MiB, PAGE_SIZE
from repro.virtio.memio import (
    AccessorStats,
    BytewiseRemoteAccessor,
    GuestMemoryAccessor,
    GpaTranslator,
    InProcessAccessor,
    IOV_MAX,
    PerPageRemoteAccessor,
    RemoteProcessAccessor,
)


def _remote(accessor_cls=RemoteProcessAccessor, size=8 * MiB):
    host = HostKernel()
    vmsh = host.spawn_process("vmsh")
    hv = host.spawn_process("hypervisor")
    hva = host.syscall(hv.main_thread, "mmap", size, "guest-ram")
    translator = GpaTranslator([MemslotRecord(slot=0, gpa=0, size=size, hva=hva)])
    return host, accessor_cls(host, vmsh.main_thread, hv.pid, translator)


def test_accessor_stats_as_dict():
    stats = AccessorStats(reads=2, writes=1, bytes_read=100, bytes_written=50,
                          calls=3, segments=10)
    assert stats.segments_coalesced == 7
    assert stats.as_dict() == {
        "reads": 2, "writes": 1, "bytes_read": 100, "bytes_written": 50,
        "calls": 3, "segments": 10, "segments_coalesced": 7,
    }


def test_base_vectored_falls_back_per_segment():
    class ArrayAccessor(GuestMemoryAccessor):
        def __init__(self):
            super().__init__()
            self.buf = bytearray(4096)

        def read(self, gpa, length):
            return bytes(self.buf[gpa:gpa + length])

        def write(self, gpa, data):
            self.buf[gpa:gpa + len(data)] = data

    acc = ArrayAccessor()
    acc.write_vectored([(0, b"ab"), (100, b"cd")])
    assert acc.read_vectored([(0, 2), (100, 2)]) == b"abcd"


def test_inprocess_vectored_is_one_memcpy():
    mem = PhysicalMemory(1 * MiB)
    costs = CostModel(Clock())
    acc = InProcessAccessor(mem, costs)
    acc.write_vectored([(0, b"aa"), (PAGE_SIZE, b"bb"), (2 * PAGE_SIZE, b"")])
    assert costs.count("memcpy") == 1
    assert acc.stats.calls == 1
    assert acc.stats.segments == 2          # empty segment filtered out
    assert acc.read_vectored([(0, 2), (PAGE_SIZE, 2)]) == b"aabb"


def test_remote_vectored_chunks_at_iov_max():
    host, acc = _remote()
    iov = [(page * PAGE_SIZE, 16) for page in range(IOV_MAX + 200)]
    data = acc.read_vectored(iov)
    assert len(data) == (IOV_MAX + 200) * 16
    assert acc.stats.calls == 2             # 1024 + 200 segments
    assert acc.stats.segments == IOV_MAX + 200
    assert host.costs.count("procvm_copy") == 2


def test_per_page_ablation_pays_one_call_per_segment():
    host, acc = _remote(PerPageRemoteAccessor)
    iov = [(page * PAGE_SIZE, PAGE_SIZE) for page in range(16)]
    acc.read_vectored(iov)
    assert acc.stats.calls == 16
    assert acc.stats.segments_coalesced == 0
    assert host.costs.count("procvm_copy") == 16


def test_vectored_path_is_faster_than_per_page():
    """The ablation ordering the sg-batching benchmark relies on."""
    host_v, fast = _remote()
    host_p, slow = _remote(PerPageRemoteAccessor)
    host_b, staged = _remote(BytewiseRemoteAccessor)
    iov = [(page * PAGE_SIZE, PAGE_SIZE) for page in range(128)]
    fast.read_vectored(iov)
    slow.read_vectored(iov)
    staged.read_vectored(iov)
    assert host_v.clock.now < host_p.clock.now < host_b.clock.now


def test_remote_write_vectored_roundtrip():
    host, acc = _remote()
    chunks = [bytes([i]) * 100 for i in range(20)]
    acc.write_vectored([(i * PAGE_SIZE, c) for i, c in enumerate(chunks)])
    assert acc.read_vectored([(i * PAGE_SIZE, 100) for i in range(20)]) == b"".join(chunks)
    assert acc.stats.bytes_written == 2000
    assert acc.stats.bytes_read == 2000
    assert acc.stats.calls == 2             # one readv + one writev
