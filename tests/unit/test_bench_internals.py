"""Benchmark-infrastructure units: harness, workloads, xfstests, latency."""

import pytest

from repro.bench.harness import (
    ENV_NAMES,
    make_env,
    ops_per_second,
    throughput_mb_s,
)
from repro.bench.workloads.fio import FioJob, file_io_job, iops_job, run_fio, throughput_job
from repro.bench.xfstests import EXPECTED_TEST_COUNT, build_suite
from repro.units import KiB, MiB, SEC


def test_metric_helpers():
    assert throughput_mb_s(1024 * 1024, SEC) == pytest.approx(1.0)
    assert ops_per_second(500, SEC // 2) == pytest.approx(1000.0)
    assert throughput_mb_s(1, 0) == float("inf")


def test_every_environment_constructs():
    for name in ENV_NAMES:
        env = make_env(name, disk_size=32 * MiB)
        env.vfs.write_file(f"{env.mountpoint}/probe", b"probe")
        assert env.vfs.read_file(f"{env.mountpoint}/probe") == b"probe"


def test_unknown_environment_rejected():
    with pytest.raises(ValueError):
        make_env("bochs")


def test_fio_job_naming():
    job = FioJob(block_size=4 * KiB, total_bytes=1 * MiB, pattern="rand",
                 direction="write", direct=True)
    assert job.name == "fio rand write 4KB (Direct IO)"
    assert throughput_job("read").block_size == 256 * KiB
    assert iops_job("read").block_size == 4 * KiB
    assert not file_io_job("read").direct


def test_fio_measures_only_the_io_phase():
    env = make_env("native", disk_size=64 * MiB)
    result = run_fio(env, FioJob(block_size=4 * KiB, total_bytes=256 * KiB,
                                 pattern="seq", direction="read", direct=True))
    assert result.detail["ops"] == 64
    assert result.detail["bytes"] == 256 * KiB
    assert result.elapsed_ns > 0


def test_fio_rand_covers_every_block_once():
    from repro.bench.workloads.fio import _offsets

    job = FioJob(block_size=4 * KiB, total_bytes=64 * KiB, pattern="rand",
                 direction="read", direct=True)
    offsets = _offsets(job)
    assert sorted(offsets) == [i * 4 * KiB for i in range(16)]
    assert offsets != sorted(offsets)          # actually shuffled


def test_fio_deterministic_offsets():
    from repro.bench.workloads.fio import _offsets

    job = FioJob(block_size=4 * KiB, total_bytes=64 * KiB, pattern="rand",
                 direction="read", direct=True)
    assert _offsets(job) == _offsets(job)


def test_workloads_leave_filesystem_clean():
    """Each workload must clean up so the suite fits the disk."""
    from repro.bench.workloads import compilebench, dbench, postmark, sqlite

    env = make_env("native", disk_size=64 * MiB)
    free_before = env.vfs.statfs("/")["bfree"]
    compilebench.run_all(env)
    dbench.run_dbench(env, 1)
    postmark.run_postmark(env)
    sqlite.run_sqlite(env, 1)
    env.fs.sync_all()
    free_after = env.vfs.statfs("/")["bfree"]
    assert free_after >= free_before - 16     # only metadata residue


def test_xfstests_suite_is_exactly_619():
    suite = build_suite()
    assert len(suite) == EXPECTED_TEST_COUNT == 619
    ids = [t.test_id for t in suite]
    assert len(set(ids)) == len(ids)           # unique ids
    assert sum(1 for i in ids if i.startswith("xfs/")) >= 10


def test_xfstests_deterministic():
    a = [t.test_id for t in build_suite()]
    b = [t.test_id for t in build_suite()]
    assert a == b


def test_xfstests_quota_reports_are_three():
    suite = build_suite()
    quota_reports = [t for t in suite if "quota-report" in t.test_id]
    assert len(quota_reports) == 3


def test_latency_native_floor():
    from repro.bench.latency import measure_native
    from repro.testbed import Testbed

    tb = Testbed()
    result = measure_native(tb, rounds=8)
    assert len(result.samples_ns) == 8
    # tty turnaround + shell exec at minimum.
    assert result.mean_ns >= tb.costs.p.tty_layer_ns + tb.costs.p.shell_exec_ns


def test_phoronix_row_relative():
    from repro.bench.workloads.phoronix import PhoronixRow

    row = PhoronixRow("x", qemu_elapsed_ns=100, vmsh_elapsed_ns=150)
    assert row.relative == pytest.approx(1.5)
    assert PhoronixRow("y", 0, 50).relative == 1.0


def test_phoronix_suite_rows_cover_figure5():
    from repro.bench.workloads.phoronix import suite_rows

    names = [name for name, _ in suite_rows()]
    assert len(names) == 32                     # the Figure 5 row count
    for expected in (
        "Compile Bench: Compile", "Dbench: 12 Clients",
        "FS-Mark: 4k Files, 32 Dirs", "Fio: Rand read, 4KB",
        "IOR: 1025MB", "PostMark: Disk transactions",
        "Sqlite: 128 Threads",
    ):
        assert expected in names
