"""DeviceRing descriptor-parse hardening (PR 7 satellite).

A hostile or buggy guest driver can publish garbage: descriptor
loops, out-of-range indices, zero-length buffers, addresses outside
any memslot, a corrupt ``used_event``.  The device side must reject
each with :class:`VirtioError` (counted per-reason in the metrics
registry as ``vring.parse_errors{reason=...}``) and the queue must
stay usable afterwards — never crash, never corrupt, never wedge.
"""

import pytest

from repro.errors import VirtioError
from repro.mem.physmem import PhysicalMemory
from repro.obs.metrics import MetricsRegistry
from repro.replay.scenarios import VIRTIO_ABUSES, AttachCase, run_attach_case
from repro.units import MiB
from repro.virtio.constants import VRING_DESC_F_NEXT
from repro.virtio.vring import AVAIL_HEADER, DESC_SIZE, DeviceRing, DriverRing

QUEUE = 8
DESC, AVAIL, USED = 0x1000, 0x2000, 0x3000


class BoundedMemory:
    """Raw memory adapter that can also answer :meth:`covers` — the
    pre-check hook the hardened parser uses to veto unmapped GPAs."""

    def __init__(self, size_bytes):
        self._mem = PhysicalMemory(size_bytes)
        self._size = size_bytes

    def covers(self, gpa, length):
        return 0 <= gpa and gpa + length <= self._size

    def __getattr__(self, name):
        return getattr(self._mem, name)


@pytest.fixture()
def harness():
    registry = MetricsRegistry()
    scope = registry.scope("vring", device="test", queue=0)
    mem = BoundedMemory(1 * MiB)
    driver = DriverRing(mem, DESC, AVAIL, USED, QUEUE)
    device = DeviceRing(mem, DESC, AVAIL, USED, QUEUE, metrics=scope)
    return registry, mem, driver, device


def _write_desc(mem, index, addr, length, flags, nxt):
    base = DESC + index * DESC_SIZE
    mem.write_u64(base, addr)
    mem.write_u32(base + 8, length)
    mem.write_u16(base + 12, flags)
    mem.write_u16(base + 14, nxt)


def _publish(mem, driver, head):
    slot = driver._avail_idx % driver.size
    mem.write_u16(AVAIL + AVAIL_HEADER + slot * 2, head)
    driver._avail_idx = (driver._avail_idx + 1) & 0xFFFF
    mem.write_u16(AVAIL + 2, driver._avail_idx)


def _counter_value(registry, reason):
    for key, metric in registry.walk():
        if key[1] == "parse_errors" and ("reason", reason) in key[2]:
            return metric.value
    return 0


def _pop_one(device):
    heads = device.pop_available()
    assert heads, "driver published a chain"
    return heads[0]


def test_descriptor_self_loop_raises(harness):
    registry, mem, driver, device = harness
    _write_desc(mem, 0, 0x8000, 64, VRING_DESC_F_NEXT, 0)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError, match="loop"):
        device.read_chain(_pop_one(device))
    assert _counter_value(registry, "desc_loop") == 1


def test_descriptor_cross_loop_raises(harness):
    registry, mem, driver, device = harness
    _write_desc(mem, 0, 0x8000, 64, VRING_DESC_F_NEXT, 1)
    _write_desc(mem, 1, 0x8000, 64, VRING_DESC_F_NEXT, 0)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError, match="loop"):
        device.read_chain(_pop_one(device))
    assert _counter_value(registry, "desc_loop") == 1


def test_out_of_range_descriptor_index_raises(harness):
    registry, mem, driver, device = harness
    _write_desc(mem, 0, 0x8000, 64, VRING_DESC_F_NEXT, QUEUE + 3)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError, match="out of range"):
        device.read_chain(_pop_one(device))
    assert _counter_value(registry, "desc_index") == 1


def test_zero_length_descriptor_raises(harness):
    registry, mem, driver, device = harness
    _write_desc(mem, 0, 0x8000, 0, 0, 0)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError, match="zero-length"):
        device.read_chain(_pop_one(device))
    assert _counter_value(registry, "zero_len") == 1


def test_unmapped_gpa_descriptor_raises(harness):
    registry, mem, driver, device = harness
    _write_desc(mem, 0, 0x40_0000_0000, 64, 0, 0)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError, match="unmapped"):
        device.read_chain(_pop_one(device))
    assert _counter_value(registry, "bad_gpa") == 1


def test_avail_overflow_raises(harness):
    registry, mem, driver, device = harness
    mem.write_u16(AVAIL + 2, QUEUE + 5)     # idx runs past queue size
    with pytest.raises(VirtioError, match="advanced past"):
        device.pop_available()
    assert _counter_value(registry, "avail_overflow") == 1


def test_valid_chain_still_parses_after_rejection(harness):
    """The queue survives rejected garbage: a well-formed chain
    published afterwards parses normally."""
    registry, mem, driver, device = harness
    _write_desc(mem, 0, 0x8000, 0, 0, 0)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError):
        device.read_chain(_pop_one(device))
    # The driver API reuses descriptor 0 for a legitimate chain.
    driver._free = list(range(QUEUE))
    head = driver.add_chain([(0x8000, 64, False), (0x9000, 32, True)])
    driver.kick_prepare()
    chain = device.read_chain(_pop_one(device))
    assert chain[0].index == head
    assert [(d.addr, d.length, d.device_writable) for d in chain] == [
        (0x8000, 64, False),
        (0x9000, 32, True),
    ]
    assert _counter_value(registry, "zero_len") == 1


def test_parse_errors_unmetered_ring_still_raises():
    """No registry scope: the error path must not depend on metrics."""
    mem = BoundedMemory(1 * MiB)
    driver = DriverRing(mem, DESC, AVAIL, USED, QUEUE)
    device = DeviceRing(mem, DESC, AVAIL, USED, QUEUE)
    _write_desc(mem, 0, 0x8000, 0, 0, 0)
    _publish(mem, driver, 0)
    with pytest.raises(VirtioError, match="zero-length"):
        device.read_chain(device.pop_available()[0])


#: the vring parse-error reason each abuse must trip.  The net abuses
#: reuse the ring-level validation paths (their names just say which
#: ring they scribble on); ``None`` marks abuses rejected elsewhere —
#: EVENT_IDX hint clamping and the net device's direction check raise
#: before any descriptor parse.
_ABUSE_REASON = {
    "bogus_used_event": None,
    "net_tx_desc_loop": "desc_loop",
    "net_tx_bad_gpa": "bad_gpa",
    "net_rx_bad_dir": None,
}


@pytest.mark.parametrize("abuse", VIRTIO_ABUSES)
def test_full_stack_survives_hostile_driver(abuse):
    """End to end: an attached guest abuses one of its virtio queues;
    the device rejects the garbage and the queue keeps working."""
    result = run_attach_case(AttachCase(virtio_abuse=abuse))
    assert result.outcome == "attached"
    assert result.violations == []
    reason = _ABUSE_REASON.get(abuse, abuse)
    if reason is not None:
        assert f"ctr:vring.parse_errors{{reason={reason}}}" in result.coverage
