"""The command-line interface."""

import pytest

from repro.cli import main


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "attached to qemu-system-x86_64" in out
    assert "ksymtab prel32_ns" in out


def test_attach_default(capsys):
    assert main(["attach", "-c", "echo cli-test"]) == 0
    out = capsys.readouterr().out
    assert "cli-test" in out


def test_attach_old_kernel(capsys):
    assert main(["attach", "--kernel", "v4.4", "-c", "echo old"]) == 0
    out = capsys.readouterr().out
    assert "ksymtab absolute" in out
    assert "old" in out


def test_attach_firecracker_seccomp_fails(capsys):
    assert main(["attach", "--hypervisor", "firecracker"]) == 1
    err = capsys.readouterr().err
    assert "seccomp" in err.lower()


def test_attach_firecracker_no_seccomp(capsys):
    assert main(["attach", "--hypervisor", "firecracker", "--no-seccomp",
                 "-c", "echo fc"]) == 0
    assert "fc" in capsys.readouterr().out


def test_attach_firecracker_seccomp_aware(capsys):
    assert main(["attach", "--hypervisor", "firecracker", "--seccomp-aware",
                 "-c", "echo heuristic"]) == 0
    assert "heuristic" in capsys.readouterr().out


def test_attach_cloud_hypervisor_mmio_fails(capsys):
    assert main(["attach", "--hypervisor", "cloud-hypervisor"]) == 1


def test_attach_cloud_hypervisor_pci(capsys):
    assert main(["attach", "--hypervisor", "cloud-hypervisor",
                 "--transport", "pci", "-c", "echo pci"]) == 0
    out = capsys.readouterr().out
    assert "transport pci" in out


def test_xfstests_quick(capsys):
    assert main(["xfstests", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "native" in out and "vmsh-blk" in out
    assert "quota-report" in out


def test_console_latency(capsys):
    assert main(["console-latency"]) == 0
    out = capsys.readouterr().out
    assert "vmsh-console" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
