"""NetFabric unit behavior: routing, timing, contention, drops."""

import pytest

from repro.errors import VmshError
from repro.sim.clock import Clock
from repro.sim.netfab import NetFabric
from repro.sim.sched import Scheduler
from repro.virtio.net import make_frame


@pytest.fixture()
def fab():
    clock = Clock()
    scheduler = Scheduler(clock, label="netfab-test")
    return NetFabric(scheduler, latency_ns=50_000, bytes_per_us=1_250)


def _pair(fab):
    a = fab.attach("a")
    b = fab.attach("b")
    got_a, got_b = [], []
    a.connect(got_a.append)
    b.connect(got_b.append)
    return a, b, got_a, got_b


def test_unicast_routes_by_destination_mac(fab):
    a, b, got_a, got_b = _pair(fab)
    frame = make_frame(b.mac, a.mac, b"hello")
    a.transmit(frame)
    fab.scheduler.run_until_idle()
    assert got_b == [frame]
    assert got_a == []
    assert fab.frames_delivered == 1
    assert b.rx_frames == 1 and a.tx_frames == 1


def test_broadcast_floods_every_other_port(fab):
    a, b, got_a, got_b = _pair(fab)
    c = fab.attach("c")
    got_c = []
    c.connect(got_c.append)
    frame = make_frame(b"\xff" * 6, a.mac, b"all")
    a.transmit(frame)
    fab.scheduler.run_until_idle()
    assert got_b == [frame] and got_c == [frame]
    assert got_a == [], "no self-delivery on broadcast"


def test_unknown_destination_counts_unrouted(fab):
    a, b, got_a, got_b = _pair(fab)
    a.transmit(make_frame(b"\x0a" * 6, a.mac, b"void"))
    fab.scheduler.run_until_idle()
    assert fab.frames_unrouted == 1
    assert fab.frames_delivered == 0


def test_runt_frame_rejected(fab):
    a, _b, _ga, _gb = _pair(fab)
    with pytest.raises(VmshError):
        fab.transmit(a, b"\x00" * 6)


def test_duplicate_mac_rejected(fab):
    a = fab.attach("a")
    with pytest.raises(VmshError):
        fab.attach("imposter", mac=a.mac)


def test_frames_take_latency_plus_serialization(fab):
    a, b, _ga, got_b = _pair(fab)
    arrival = []
    b.connect(lambda f: arrival.append(fab.scheduler.now))
    frame = make_frame(b.mac, a.mac, b"\x00" * 113)  # 125 bytes total
    a.transmit(frame)
    fab.scheduler.run_until_idle()
    # 125B at 1250 B/us = 100ns serialization, paid at egress AND
    # ingress, plus 50us one-way latency.
    assert arrival == [100 + 50_000 + 100]


def test_flooder_delays_the_victims_other_traffic(fab):
    a, b, _ga, _gb = _pair(fab)
    flooder = fab.attach("flooder")
    small_at = []
    b.connect(lambda f: small_at.append(fab.scheduler.now)
              if f[12:] == b"small" else None)
    small = make_frame(b.mac, a.mac, b"small")
    ser = fab.default.serialization_ns(len(small))
    unloaded = 2 * ser + fab.default.latency_ns
    for _ in range(64):
        flooder.transmit(make_frame(b.mac, flooder.mac, b"\x00" * 1238))
    a.transmit(small)
    fab.scheduler.run_until_idle()
    # the small frame queued behind the flood at the victim's ingress:
    # 64 flood frames of 1250B each occupy 64us of ingress time on top
    # of the small frame's ~50us unloaded delivery.
    assert small_at and small_at[0] > unloaded + 60_000


def test_seeded_drops_are_deterministic():
    def run(seed):
        clock = Clock()
        fab = NetFabric(Scheduler(clock, label="drops"),
                        master_seed=seed, drop_rate=0.2)
        a = fab.attach("a")
        b = fab.attach("b")
        b.connect(lambda f: None)
        for i in range(100):
            a.transmit(make_frame(b.mac, a.mac, b"%d" % i))
        fab.scheduler.run_until_idle()
        return fab.frames_dropped, fab.frames_delivered

    first = run(1234)
    assert first == run(1234)
    assert first[0] > 0 and first[1] > 0
    assert first != run(5678)


def test_alloc_mac_is_locally_administered_and_unique(fab):
    macs = {fab.alloc_mac() for _ in range(16)}
    assert len(macs) == 16
    assert all(m.startswith(b"\x52\x54\x00") for m in macs)


def test_detach_makes_port_unroutable(fab):
    a, b, _ga, got_b = _pair(fab)
    fab.detach(b)
    a.transmit(make_frame(b.mac, a.mac, b"gone"))
    fab.scheduler.run_until_idle()
    assert got_b == []
    assert fab.frames_unrouted == 1
