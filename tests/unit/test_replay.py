"""Unit coverage for the record/replay machinery.

Recording format round trips, tracer recording-safety (pinning,
eviction, detail deep-copy), coverage extraction, the attach-case
harness, and the corpus entry format.
"""

import json

import pytest

from repro.errors import (
    RecordingError,
    RecordingOverflowError,
)
from repro.replay.corpus import CorpusEntry, case_digest, save_entry
from repro.replay.coverage import coverage_keys
from repro.replay.recording import (
    Recording,
    RunRecorder,
    encode_event,
    jsonable,
)
from repro.replay.scenarios import AttachCase, run_attach_case
from repro.sim.trace import Event, Tracer
from repro.testbed import Testbed


# ---------------------------------------------------------------------------
# Canonical encoding
# ---------------------------------------------------------------------------

def test_jsonable_canonicalises_non_json_types():
    assert jsonable((1, 2)) == [1, 2]
    assert jsonable({1: "a"}) == {"1": "a"}
    assert jsonable(b"\xde\xad") == {"__bytes__": "dead"}
    assert jsonable({"nested": {2, 1}}) == {"nested": ["1", "2"]}
    assert json.dumps(jsonable(object())).startswith('"<object')


def test_encode_event_shape():
    event = Event(7, "cat", "name", {"k": (1,)})
    assert encode_event(event) == [7, "cat", "name", {"k": [1]}]


# ---------------------------------------------------------------------------
# Recording format
# ---------------------------------------------------------------------------

def _tiny_recording():
    return Recording(
        scenario="attach",
        params={"case": AttachCase().to_json()},
        master_seed=7,
        cost_params={"x": 1},
        events=[[0, "a", "b", None], [1, "c", "d", {"e": 2}]],
        outcome="ok",
    )


def test_recording_round_trips(tmp_path):
    rec = _tiny_recording()
    path = rec.save(tmp_path / "run.json")
    loaded = Recording.load(path)
    assert loaded.events == rec.events
    assert loaded.master_seed == rec.master_seed
    assert loaded.params == rec.params


def test_recording_rejects_wrong_format():
    with pytest.raises(RecordingError, match="not a run recording"):
        Recording.from_json(json.dumps({"format": "nope"}))


def test_recording_rejects_future_version():
    doc = json.loads(_tiny_recording().to_json())
    doc["version"] = 99
    with pytest.raises(RecordingError, match="version"):
        Recording.from_json(json.dumps(doc))


def test_recording_detects_truncation_and_tampering():
    doc = json.loads(_tiny_recording().to_json())
    truncated = dict(doc)
    truncated["events"] = doc["events"][:1]
    with pytest.raises(RecordingError, match="truncated"):
        Recording.from_json(json.dumps(truncated))
    tampered = json.loads(_tiny_recording().to_json())
    tampered["events"][0][1] = "tampered"
    with pytest.raises(RecordingError, match="digest"):
        Recording.from_json(json.dumps(tampered))


# ---------------------------------------------------------------------------
# Tracer recording-safety (satellite: pin + deep-copy)
# ---------------------------------------------------------------------------

def test_pinned_tracer_raises_instead_of_evicting():
    tracer = Tracer(max_events=4)
    tracer.pin()
    for i in range(4):
        tracer.emit("t", f"e{i}")
    with pytest.raises(RecordingOverflowError):
        tracer.emit("t", "overflow")
    tracer.unpin()
    tracer.emit("t", "fine")        # unpinned again: eviction resumes
    assert tracer.dropped_events > 0


def test_emit_deep_copies_mutable_detail_when_recorded():
    # The defensive copy exists for *recorded* streams: while a pin or
    # sink is active, history must not be rewritten by an emitter
    # mutating its detail dict after the fact.
    tracer = Tracer()
    tracer.pin()
    payload = {"inner": [1, 2]}
    tracer.emit("t", "e", data=payload)
    payload["inner"].append(3)
    assert tracer.events[0].detail["data"] == {"inner": [1, 2]}
    tracer.unpin()

    sunk = Tracer()
    seen = []
    sunk.add_sink(seen.append)
    payload = {"inner": [1, 2]}
    sunk.emit("t", "e", data=payload)
    payload["inner"].append(3)
    assert seen[0].detail["data"] == {"inner": [1, 2]}


def test_emit_skips_copy_on_unobserved_fast_path():
    # With no sink and no pin nothing re-reads the stored detail, so
    # emit() takes the zero-copy fast path (one Event, one append).
    tracer = Tracer()
    payload = {"inner": [1, 2]}
    tracer.emit("t", "e", data=payload)
    assert tracer.events[0].detail["data"] is payload


def test_sink_sees_events_and_evictions():
    tracer = Tracer(max_events=4)
    seen = []
    tracer.add_sink(seen.append)
    for i in range(5):
        tracer.emit("t", f"e{i}")
    names = [event.name for event in seen]
    assert "e4" in names
    assert "evicted" in names       # the eviction marker reaches sinks too
    tracer.remove_sink(seen.append)
    tracer.emit("t", "unseen")
    assert all(event.name != "unseen" for event in seen)


def test_recorder_requires_traced_testbed():
    recorder = RunRecorder("fleet", {})
    tb = Testbed(trace=False)
    with pytest.raises(RecordingError, match="trace=True"):
        recorder.attach(tb)


def test_recorder_captures_seed_costs_and_events():
    recorder = RunRecorder("attach", {"case": AttachCase(seed=99).to_json()})
    result = run_attach_case(AttachCase(seed=99), on_testbed=recorder.attach)
    recording = recorder.finish(outcome=result.outcome)
    assert recording.master_seed == 99
    assert recording.events, "a traced attach emits events"
    assert recording.clock_end_ns > 0
    assert "ptrace_stop_ns" in recording.cost_params


# ---------------------------------------------------------------------------
# Coverage extraction
# ---------------------------------------------------------------------------

def test_coverage_distinguishes_outcomes_and_steps():
    ok = run_attach_case(AttachCase())
    failed = run_attach_case(
        AttachCase(specs=({"site": "attach.hijack", "kind": "permanent"},))
    )
    assert "outcome:attached" in ok.coverage
    assert "step:hijack:ok" in ok.coverage
    assert "outcome:failed:PermanentFaultError" in failed.coverage
    assert "step:hijack:failed" in failed.coverage
    assert any(k.startswith("rollback:") for k in failed.coverage)
    assert any(k.startswith("undo:") for k in failed.coverage)


def test_coverage_normalises_instance_numbers():
    result = run_attach_case(
        AttachCase(specs=({"site": "attach.hijack", "kind": "permanent"},))
    )
    for key in result.coverage:
        if key.startswith("undo:"):
            assert not any(ch.isdigit() for ch in key), key


# ---------------------------------------------------------------------------
# Corpus entries
# ---------------------------------------------------------------------------

def test_corpus_entry_round_trips(tmp_path):
    entry = CorpusEntry(
        case=AttachCase(seed=5, specs=({"site": "attach.hijack"},)),
        violations=["state-leak:vmsh_fds"],
        requires_plant=True,
        found_by="test",
    )
    path = save_entry(entry, tmp_path)
    assert path.name == f"case-{case_digest(entry.case)}.json"
    loaded = CorpusEntry.from_json(path.read_text())
    assert loaded.case == entry.case
    assert loaded.violations == entry.violations
    assert loaded.requires_plant is True


def test_corpus_entry_rejects_wrong_format():
    with pytest.raises(RecordingError, match="not a corpus entry"):
        CorpusEntry.from_json(json.dumps({"format": "zzz"}))


def test_case_digest_is_stable_and_distinct():
    a = AttachCase(seed=1)
    assert case_digest(a) == case_digest(AttachCase(seed=1))
    assert case_digest(a) != case_digest(AttachCase(seed=2))
