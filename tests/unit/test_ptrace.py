"""ptrace: attach semantics, injection, tracing, detach."""

import pytest

from repro.errors import PermissionDeniedError, PtraceError, SeccompViolationError
from repro.host.kernel import HostKernel
from repro.host.ptrace import attach
from repro.host.seccomp import SeccompFilter


@pytest.fixture()
def setup():
    host = HostKernel()
    tracer = host.spawn_process("vmsh")
    tracee = host.spawn_process("qemu")
    return host, tracer, tracee


def test_attach_marks_tracee(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    assert tracee.tracer is tracer
    session.detach()
    assert tracee.tracer is None


def test_double_attach_rejected(setup):
    host, tracer, tracee = setup
    attach(host, tracer, tracee)
    other = host.spawn_process("gdb")
    with pytest.raises(PtraceError, match="already traced"):
        attach(host, other, tracee)


def test_attach_requires_privilege(setup):
    host, _, tracee = setup
    weak = host.spawn_process("weak", uid=1000)
    weak.capabilities.clear()
    with pytest.raises(PermissionDeniedError):
        attach(host, weak, tracee)


def test_interrupt_and_resume(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    thread = tracee.main_thread
    session.interrupt(thread)
    assert thread.stopped
    with pytest.raises(PtraceError):
        session.interrupt(thread)  # already stopped
    session.resume(thread)
    assert not thread.stopped
    with pytest.raises(PtraceError):
        session.resume(thread)  # not stopped


def test_register_access_requires_stop(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    thread = tracee.main_thread
    with pytest.raises(PtraceError):
        session.get_regs(thread)
    session.interrupt(thread)
    session.set_regs(thread, {"rip": 0x1000})
    assert session.get_regs(thread)["rip"] == 0x1000


def test_inject_syscall_runs_in_tracee_context(setup):
    """The injected mmap lands in the *tracee's* address space."""
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    addr = session.inject_syscall(tracee.main_thread, "mmap", 4096, "injected")
    assert any(m.start == addr for m in tracee.address_space.mappings())
    assert not any(m.start == addr for m in tracer.address_space.mappings())


def test_inject_restores_registers(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    thread = tracee.main_thread
    session.interrupt(thread)
    session.set_regs(thread, {"rip": 0xAAAA})
    session.inject_syscall(thread, "mmap", 4096)
    assert session.get_regs(thread) == {"rip": 0xAAAA}


def test_injection_subject_to_tracee_seccomp(setup):
    """Firecracker's filters reject injected syscalls (§6.2)."""
    host, tracer, tracee = setup
    tracee.main_thread.seccomp_filter = SeccompFilter.allowlist("fc", {"ioctl"})
    session = attach(host, tracer, tracee)
    with pytest.raises(SeccompViolationError):
        session.inject_syscall(tracee.main_thread, "eventfd2")


def test_syscall_tracing_hook_fires_and_charges(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    events = []
    session.trace_syscalls(
        tracee.main_thread, lambda t, name, phase: events.append((name, phase))
    )
    stops_before = host.costs.count("ptrace_stop")
    host.syscall(tracee.main_thread, "mmap", 4096)
    assert ("mmap", "entry") in events and ("mmap", "exit") in events
    assert host.costs.count("ptrace_stop") == stops_before + 2


def test_detach_removes_hooks_and_resumes(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    session.trace_syscalls(tracee.main_thread, lambda *a: None)
    session.interrupt(tracee.main_thread)
    session.detach()
    assert not tracee.main_thread.stopped
    assert not host.thread_is_traced(tracee.main_thread)
    with pytest.raises(PtraceError):
        session.interrupt(tracee.main_thread)


def test_cannot_touch_foreign_threads(setup):
    host, tracer, tracee = setup
    session = attach(host, tracer, tracee)
    stranger = host.spawn_process("stranger")
    with pytest.raises(PtraceError):
        session.interrupt(stranger.main_thread)
