"""Property tests: the ksymtab parser against adversarial images.

The parser must recover the true table from an image that also
contains decoy string regions and junk — and it must never crash on
arbitrary bytes.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core.kaslr import KernelLocation
from repro.core.ksymtab import parse_ksymtab
from repro.errors import SideloadError
from repro.guestos.symbols import ENTRY_SIZES, build_symbol_sections
from repro.mem.layout import KERNEL_TEXT_BASE
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB

IMAGE_SIZE = 2 * MiB
identifier = st.text(alphabet=string.ascii_lowercase + "_", min_size=2, max_size=20)


class FakeGateway:
    """A gateway whose virtual reads come from a flat buffer."""

    def __init__(self, image: bytes, vbase: int = KERNEL_TEXT_BASE):
        self.image = image
        self.vbase = vbase

    def read_virt(self, vaddr: int, length: int) -> bytes:
        offset = vaddr - self.vbase
        return self.image[offset : offset + length]


@given(
    layout=st.sampled_from(sorted(ENTRY_SIZES)),
    symbols=st.dictionaries(identifier, st.integers(0x2000, 0xF0000),
                            min_size=9, max_size=30),
    decoys=st.lists(identifier, min_size=3, max_size=10),
    junk=st.binary(min_size=0, max_size=512),
)
@settings(max_examples=25, deadline=None)
def test_parser_finds_true_table_despite_decoys(layout, symbols, decoys, junk):
    mem = PhysicalMemory(IMAGE_SIZE)
    # The real sections.
    build_symbol_sections(
        {name: KERNEL_TEXT_BASE + off for name, off in symbols.items()},
        layout,
        strings_vaddr=KERNEL_TEXT_BASE + 0x118000,
        ksymtab_vaddr=KERNEL_TEXT_BASE + 0x110000,
        write=lambda vaddr, data: mem.write(vaddr - KERNEL_TEXT_BASE, data),
    )
    # A decoy string region with no table referencing it.
    decoy_blob = b"\x00".join(d.encode() for d in decoys) + b"\x00"
    mem.write(0x40000, decoy_blob)
    # And arbitrary junk elsewhere.
    mem.write(0x80000, junk)

    gateway = FakeGateway(mem.read(0, IMAGE_SIZE))
    location = KernelLocation(KERNEL_TEXT_BASE, KERNEL_TEXT_BASE + IMAGE_SIZE)
    parsed = parse_ksymtab(gateway, location)
    assert parsed.layout == layout
    for name, off in symbols.items():
        assert parsed.symbols[name] == KERNEL_TEXT_BASE + off


@given(noise=st.binary(min_size=64, max_size=4096))
@settings(max_examples=30, deadline=None)
def test_parser_never_crashes_on_noise(noise):
    """Arbitrary bytes: either a clean SideloadError or a parse that
    satisfied every consistency check — never an exception."""
    mem = PhysicalMemory(IMAGE_SIZE)
    mem.write(0x1000, noise * (65536 // max(1, len(noise))))
    gateway = FakeGateway(mem.read(0, IMAGE_SIZE))
    location = KernelLocation(KERNEL_TEXT_BASE, KERNEL_TEXT_BASE + IMAGE_SIZE)
    try:
        parsed = parse_ksymtab(gateway, location)
    except SideloadError:
        return
    # If something parsed, it passed the consistency checks: at least
    # MIN_RUN_LENGTH entries whose names are genuine identifiers.
    assert len(parsed.symbols) >= 8
    assert all(name.isidentifier() for name in parsed.symbols)
