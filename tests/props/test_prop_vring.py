"""Property tests: virtqueue chains survive arbitrary traffic."""

from hypothesis import given, settings, strategies as st

from repro.mem.physmem import PhysicalMemory
from repro.units import MiB
from repro.virtio.vring import DeviceRing, DriverRing


class DirectMemory:
    def __init__(self):
        self._mem = PhysicalMemory(1 * MiB)

    def __getattr__(self, name):
        return getattr(self._mem, name)


chains = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0x10000, max_value=0xF0000),
            st.integers(min_value=1, max_value=8192),
            st.booleans(),
        ),
        min_size=1,
        max_size=5,
    ),
    min_size=1,
    max_size=12,
)


@given(batches=st.lists(chains, min_size=1, max_size=4))
@settings(max_examples=40)
def test_chains_roundtrip_in_order(batches):
    """Whatever the driver publishes, the device reads back verbatim,
    and completions recycle every descriptor."""
    mem = DirectMemory()
    driver = DriverRing(mem, 0x1000, 0x3000, 0x4000, 64)
    device = DeviceRing(mem, 0x1000, 0x3000, 0x4000, 64)
    for batch in batches:
        published = {}
        for chain_spec in batch:
            if len(chain_spec) > driver.free_descriptors:
                continue
            head = driver.add_chain(chain_spec)
            published[head] = chain_spec
        heads = device.pop_available()
        assert list(published) == heads
        table = device.read_table()
        for head in heads:
            read_back = [
                (d.addr, d.length, d.device_writable)
                for d in device.read_chain(head, table)
            ]
            assert read_back == list(published[head])
            device.push_used(head, 1)
        completed = dict(driver.collect_used())
        assert set(completed) == set(published)
    assert driver.free_descriptors == 64


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=30)
)
@settings(max_examples=30)
def test_free_descriptor_accounting(sizes):
    mem = DirectMemory()
    driver = DriverRing(mem, 0x1000, 0x3000, 0x4000, 16)
    device = DeviceRing(mem, 0x1000, 0x3000, 0x4000, 16)
    outstanding = 0
    for size in sizes:
        if size > driver.free_descriptors:
            continue
        driver.add_chain([(0x10000, 1, False)] * size)
        outstanding += size
        assert driver.free_descriptors == 16 - outstanding
        if outstanding > 8:
            for head in device.pop_available():
                device.push_used(head, 0)
            driver.collect_used()
            outstanding = 0
