"""Cross-arch walker parity (PR 9 satellite).

The arch interface promises that the *logical* memory map VMSH sees is
ISA-independent: build the same set of mappings through each arch's
page-table builder — real x86-64 4-level PTEs, AArch64 stage-1
descriptors, Sv39 and Sv48 PTEs — then walk them host-side and require
identical relative physical addresses, identical ``translation_perms``
sets, and identical page-size classes, for every arch.  A port whose
PTE encoding or perms decoding drifts from the contract fails here
before it ever reaches an end-to-end test.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.arch import ARM64, RISCV64, RISCV64_SV48, X86_64
from repro.errors import PageFaultError
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB, PAGE_SIZE

ALL_ARCHES = (X86_64, ARM64, RISCV64, RISCV64_SV48)

#: frame pool base: distinct from table-page pool so PPN decoding bugs
#: cannot alias a frame onto a table page.
FRAME_BASE = 8 * MiB

# slot -> (writable, nx): a logical mapping plan, ISA-free.
plans = st.dictionaries(
    keys=st.integers(min_value=0, max_value=127),
    values=st.tuples(st.booleans(), st.booleans()),
    min_size=1,
    max_size=16,
)


def _materialize(arch, plan):
    """Build ``plan`` with ``arch``'s builder; walk it back with the
    walker reading the same genuine in-memory PTE bytes."""
    mem = PhysicalMemory(32 * MiB)
    alloc = itertools.count(1 * MiB, PAGE_SIZE)
    builder = arch.builder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = arch.walker(mem.read_u64)
    root = arch.encode_pt_root(builder.new_root())
    for slot, (writable, nx) in plan.items():
        builder.map_page(
            root,
            arch.kernel_text_base + slot * PAGE_SIZE,
            FRAME_BASE + slot * PAGE_SIZE,
            writable=writable,
            nx=nx,
        )
    observed = {}
    for slot in plan:
        tr = walker.translate(root, arch.kernel_text_base + slot * PAGE_SIZE)
        observed[slot] = (
            tr.paddr - FRAME_BASE,          # relative frame address
            arch.translation_perms(tr),     # logical r/w/x set
            tr.level,                       # page-size class (1 == 4K)
        )
    return observed, walker, root


@given(plan=plans)
@settings(max_examples=60, deadline=None)
def test_same_plan_same_translations_on_every_arch(plan):
    """x86-64, arm64, Sv39 and Sv48 agree byte-for-byte on paddr,
    perms and page-size class for any 4K mapping plan."""
    baseline, _, _ = _materialize(X86_64, plan)
    for arch in ALL_ARCHES[1:]:
        observed, _, _ = _materialize(arch, plan)
        assert observed == baseline, f"{arch.name} diverged from x86_64"
    # And the baseline itself is sane: 4K leaves, offsets preserved.
    for slot, (rel_paddr, perms, level) in baseline.items():
        assert rel_paddr == slot * PAGE_SIZE
        assert level == 1
        assert "r" in perms


@given(plan=plans, probe=st.integers(min_value=0, max_value=127))
@settings(max_examples=60, deadline=None)
def test_unmapped_slots_fault_on_every_arch(plan, probe):
    """A slot outside the plan faults on every arch — no phantom
    mappings from stray PTE bits on any encoding."""
    if probe in plan:
        return
    for arch in ALL_ARCHES:
        _, walker, root = _materialize(arch, plan)
        try:
            walker.translate(root, arch.kernel_text_base + probe * PAGE_SIZE)
        except PageFaultError:
            continue
        raise AssertionError(f"{arch.name}: unmapped slot {probe} translated")


@given(plan=plans)
@settings(max_examples=40, deadline=None)
def test_perms_sets_cover_the_plan(plan):
    """writable/nx kwargs map onto the same logical perms lattice on
    every arch: w iff writable, x iff not nx, r always."""
    for arch in ALL_ARCHES:
        observed, _, _ = _materialize(arch, plan)
        for slot, (writable, nx) in plan.items():
            _, perms, _ = observed[slot]
            assert ("w" in perms) == writable, arch.name
            assert ("x" in perms) == (not nx), arch.name
