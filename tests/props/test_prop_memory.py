"""Property tests: physical memory and page tables."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.mem.layout import KERNEL_TEXT_BASE, canonical
from repro.mem.pagetable import PageTableBuilder, PageTableWalker
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB, PAGE_SIZE

MEM_SIZE = 4 * MiB


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=MEM_SIZE - 64),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=24,
    )
)
def test_physmem_matches_reference_bytearray(writes):
    """Sparse memory must behave exactly like a dense bytearray."""
    mem = PhysicalMemory(MEM_SIZE)
    reference = bytearray(MEM_SIZE)
    for addr, data in writes:
        mem.write(addr, data)
        reference[addr : addr + len(data)] = data
    for addr, data in writes:
        start = max(0, addr - 8)
        length = min(len(data) + 16, MEM_SIZE - start)
        assert mem.read(start, length) == bytes(reference[start : start + length])


@given(
    addr=st.integers(min_value=0, max_value=MEM_SIZE - 8),
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_physmem_u64_roundtrip(addr, value):
    mem = PhysicalMemory(MEM_SIZE)
    mem.write_u64(addr, value)
    assert mem.read_u64(addr) == value


@st.composite
def page_mappings(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    vpages = draw(
        st.lists(
            st.integers(min_value=0, max_value=4096),
            min_size=count, max_size=count, unique=True,
        )
    )
    ppages = draw(
        st.lists(
            st.integers(min_value=512, max_value=1023),
            min_size=count, max_size=count, unique=True,
        )
    )
    return list(zip(vpages, ppages))


@given(mappings=page_mappings())
@settings(max_examples=40)
def test_pagetable_translations_match_mappings(mappings):
    """Every mapped page translates exactly; everything else faults."""
    mem = PhysicalMemory(64 * MiB)
    alloc = itertools.count(16 * MiB, PAGE_SIZE)
    builder = PageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = PageTableWalker(mem.read_u64)
    cr3 = builder.new_root()
    for vpage, ppage in mappings:
        builder.map_page(cr3, KERNEL_TEXT_BASE + vpage * PAGE_SIZE, ppage * PAGE_SIZE)
    mapped = {v for v, _ in mappings}
    for vpage, ppage in mappings:
        vaddr = KERNEL_TEXT_BASE + vpage * PAGE_SIZE
        tr = walker.translate(cr3, vaddr + 7)
        assert tr.paddr == ppage * PAGE_SIZE + 7
    for probe in range(0, 4097, 97):
        vaddr = KERNEL_TEXT_BASE + probe * PAGE_SIZE
        assert walker.is_mapped(cr3, vaddr) == (probe in mapped)


@given(vaddr=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_canonicalisation_idempotent(vaddr):
    assert canonical(canonical(vaddr)) == canonical(vaddr)


# -- gateway: virtual round-trips across page & memslot boundaries -------------

from repro.core.gateway import GuestMemoryGateway      # noqa: E402
from repro.host.ebpf import MemslotRecord              # noqa: E402
from repro.host.kernel import HostKernel               # noqa: E402

SLOT_PAGES = 64
DATA_PAGES = SLOT_PAGES + SLOT_PAGES // 2       # the window spans both slots
DATA_BYTES = DATA_PAGES * PAGE_SIZE


def _gateway_env():
    """Two gpa-contiguous (hva-disjoint) memslots behind a gateway, with
    an identity-mapped kernel-space window covering both."""
    host = HostKernel()
    vmsh = host.spawn_process("vmsh")
    hv = host.spawn_process("hypervisor")
    size = SLOT_PAGES * PAGE_SIZE
    records = []
    for i in range(2):
        hva = host.syscall(hv.main_thread, "mmap", size, f"guest-ram-{i}")
        records.append(MemslotRecord(slot=i, gpa=i * size, size=size, hva=hva))
    gateway = GuestMemoryGateway(host, vmsh.main_thread, hv.pid, records)
    # Page tables live in the top pages of slot 1, clear of the data window.
    alloc = itertools.count((2 * SLOT_PAGES - 24) * PAGE_SIZE, PAGE_SIZE)
    builder = gateway.arch.builder(
        gateway.phys.read_u64, gateway.phys.write_u64, lambda: next(alloc)
    )
    roots = []
    for _ in range(2):      # second identical root models a CR3 reload
        cr3 = builder.new_root()
        for page in range(DATA_PAGES):
            builder.map_page(
                cr3, KERNEL_TEXT_BASE + page * PAGE_SIZE, page * PAGE_SIZE
            )
        roots.append(cr3)
    gateway.set_cr3(roots[0])
    return gateway, records, roots


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=DATA_BYTES - 256),
            st.binary(min_size=1, max_size=256),
        ),
        min_size=1,
        max_size=6,
    ),
    reload_mode=st.sampled_from(["none", "cr3", "memslots"]),
)
@settings(max_examples=20, deadline=None)
def test_gateway_virt_roundtrip_survives_tlb_invalidation(ops, reload_mode):
    """write_virt/read_virt round-trip through the software TLB and the
    vectored copy path, across page and memslot boundaries, before and
    after the TLB is flushed by a CR3 reload or a memslot refresh."""
    gateway, records, roots = _gateway_env()
    reference = bytearray(DATA_BYTES)
    for offset, data in ops:
        gateway.write_virt(KERNEL_TEXT_BASE + offset, data)
        reference[offset : offset + len(data)] = data
    if reload_mode == "cr3":
        gateway.set_cr3(roots[1])
    elif reload_mode == "memslots":
        stats_before = gateway.phys.stats
        gateway.refresh_memslots(records)
        assert gateway.phys.stats is stats_before       # counters cumulative
    if reload_mode != "none":
        assert gateway._tlb == {}                       # flushed like real TLBs
    for offset, data in ops:
        start = max(0, offset - 8)
        length = min(len(data) + 16, DATA_BYTES - start)
        got = gateway.read_virt(KERNEL_TEXT_BASE + start, length)
        assert got == bytes(reference[start : start + length])
