"""Property tests: physical memory and page tables."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.mem.layout import KERNEL_TEXT_BASE, canonical
from repro.mem.pagetable import PageTableBuilder, PageTableWalker
from repro.mem.physmem import PhysicalMemory
from repro.units import MiB, PAGE_SIZE

MEM_SIZE = 4 * MiB


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=MEM_SIZE - 64),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=24,
    )
)
def test_physmem_matches_reference_bytearray(writes):
    """Sparse memory must behave exactly like a dense bytearray."""
    mem = PhysicalMemory(MEM_SIZE)
    reference = bytearray(MEM_SIZE)
    for addr, data in writes:
        mem.write(addr, data)
        reference[addr : addr + len(data)] = data
    for addr, data in writes:
        start = max(0, addr - 8)
        length = min(len(data) + 16, MEM_SIZE - start)
        assert mem.read(start, length) == bytes(reference[start : start + length])


@given(
    addr=st.integers(min_value=0, max_value=MEM_SIZE - 8),
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_physmem_u64_roundtrip(addr, value):
    mem = PhysicalMemory(MEM_SIZE)
    mem.write_u64(addr, value)
    assert mem.read_u64(addr) == value


@st.composite
def page_mappings(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    vpages = draw(
        st.lists(
            st.integers(min_value=0, max_value=4096),
            min_size=count, max_size=count, unique=True,
        )
    )
    ppages = draw(
        st.lists(
            st.integers(min_value=512, max_value=1023),
            min_size=count, max_size=count, unique=True,
        )
    )
    return list(zip(vpages, ppages))


@given(mappings=page_mappings())
@settings(max_examples=40)
def test_pagetable_translations_match_mappings(mappings):
    """Every mapped page translates exactly; everything else faults."""
    mem = PhysicalMemory(64 * MiB)
    alloc = itertools.count(16 * MiB, PAGE_SIZE)
    builder = PageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = PageTableWalker(mem.read_u64)
    cr3 = builder.new_root()
    for vpage, ppage in mappings:
        builder.map_page(cr3, KERNEL_TEXT_BASE + vpage * PAGE_SIZE, ppage * PAGE_SIZE)
    mapped = {v for v, _ in mappings}
    for vpage, ppage in mappings:
        vaddr = KERNEL_TEXT_BASE + vpage * PAGE_SIZE
        tr = walker.translate(cr3, vaddr + 7)
        assert tr.paddr == ppage * PAGE_SIZE + 7
    for probe in range(0, 4097, 97):
        vaddr = KERNEL_TEXT_BASE + probe * PAGE_SIZE
        assert walker.is_mapped(cr3, vaddr) == (probe in mapped)


@given(vaddr=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_canonicalisation_idempotent(vaddr):
    assert canonical(canonical(vaddr)) == canonical(vaddr)
