"""Property tests: serialisation formats round-trip for all inputs."""

import string

from hypothesis import given, settings, strategies as st

from repro.guestos.blockcore import MemoryBlockDevice
from repro.guestos.symbols import ENTRY_SIZES, build_symbol_sections
from repro.guestos.version import KernelVersion
from repro.guestos.vfs import MountNamespace, Vfs
from repro.image.fsimage import ImageSpec, build_image, mount_image
from repro.mem.physmem import PhysicalMemory
from repro.sideload import build_blob, pack_config, parse_blob, unpack_config
from repro.units import MiB, SECTOR_SIZE

identifier = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=24)


@given(
    config=st.dictionaries(
        keys=st.text(alphabet=string.ascii_letters + "._-", min_size=1, max_size=32),
        values=st.binary(max_size=512),
        max_size=10,
    )
)
def test_config_tlv_roundtrip(config):
    assert unpack_config(pack_config(config)) == config


@given(
    program_id=identifier,
    reloc_names=st.lists(identifier.filter(lambda s: len(s) <= 31),
                         max_size=16, unique=True),
    payload=st.binary(max_size=4096),
)
@settings(max_examples=50)
def test_self_blob_roundtrip(program_id, reloc_names, payload):
    blob = build_blob(program_id, reloc_names, {"k": b"v"}, payload)
    parsed = parse_blob(lambda off, ln: blob[off : off + ln])
    assert parsed.program_id == program_id
    assert [r.name for r in parsed.relocs] == reloc_names
    assert parsed.payload == payload


@given(
    layout=st.sampled_from(sorted(ENTRY_SIZES)),
    symbols=st.dictionaries(
        keys=identifier,
        values=st.integers(min_value=0x1000, max_value=0xF0000),
        min_size=1,
        max_size=40,
    ),
)
@settings(max_examples=50)
def test_symbol_sections_decode_with_ground_truth(layout, symbols):
    """Build sections, then decode them with plain struct math."""
    mem = PhysicalMemory(4 * MiB)
    sections = build_symbol_sections(
        symbols, layout, strings_vaddr=0x200000, ksymtab_vaddr=0x100000,
        write=mem.write,
    )
    entry_size = ENTRY_SIZES[layout]
    recovered = {}
    for i in range(sections.entry_count):
        base = 0x100000 + i * entry_size
        if layout == "absolute":
            value = mem.read_u64(base)
            name_addr = mem.read_u64(base + 8)
        else:
            value = base + mem.read_i32(base)
            name_addr = base + 4 + mem.read_i32(base + 4)
        raw = mem.read(name_addr, 64)
        name = raw.split(b"\x00")[0].decode()
        recovered[name] = value
    assert recovered == symbols


@given(
    files=st.dictionaries(
        keys=st.lists(identifier, min_size=1, max_size=3).map(
            lambda parts: "/" + "/".join(parts)
        ),
        values=st.binary(min_size=0, max_size=20_000),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=30, deadline=None)
def test_image_roundtrip_arbitrary_trees(files):
    # Drop paths that are prefixes of others (a file cannot be a dir).
    keys = sorted(files)
    cleaned = {
        k: v
        for k, v in files.items()
        if not any(other != k and other.startswith(k + "/") for other in keys)
    }
    spec = ImageSpec()
    for path, content in cleaned.items():
        spec.add_file(path, content)
    image = build_image(spec)
    device = MemoryBlockDevice("img", max(len(image), 1 * MiB))
    device.write_sectors(0, image + b"\x00" * (-len(image) % SECTOR_SIZE))
    fs = mount_image(device)
    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    for path, content in cleaned.items():
        assert vfs.read_file(path) == content


@given(major=st.integers(min_value=2, max_value=9),
       minor=st.integers(min_value=0, max_value=99))
def test_version_parse_roundtrip(major, minor):
    version = KernelVersion(major, minor)
    assert KernelVersion.parse(str(version)) == version


@given(
    a=st.tuples(st.integers(2, 9), st.integers(0, 99)),
    b=st.tuples(st.integers(2, 9), st.integers(0, 99)),
)
def test_version_ordering_total(a, b):
    va, vb = KernelVersion(*a), KernelVersion(*b)
    assert (va < vb) == ((a[0], a[1]) < (b[0], b[1]))
    assert (va == vb) == (a == b)
