"""Property tests: the filesystem against a dict-of-bytes oracle."""

from hypothesis import given, settings, strategies as st

from repro.errors import VfsError
from repro.guestos.blockcore import MemoryBlockDevice
from repro.guestos.fs import Filesystem
from repro.guestos.pagecache import PageCache
from repro.guestos.vfs import MountNamespace, O_CREAT, O_RDWR, Vfs
from repro.units import MiB


def _vfs(device_backed: bool) -> Vfs:
    if device_backed:
        fs = Filesystem(
            "xfs", device=MemoryBlockDevice("d", 16 * MiB), cache=PageCache()
        )
    else:
        fs = Filesystem("tmpfs")
    vfs = Vfs(MountNamespace())
    vfs.mount(fs, "/")
    return vfs


op_strategy = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(min_value=0, max_value=9),          # file index
        st.integers(min_value=0, max_value=20_000),     # offset
        st.binary(min_size=1, max_size=9_000),
    ),
    st.tuples(
        st.just("truncate"),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=30_000),
    ),
    st.tuples(st.just("delete"), st.integers(min_value=0, max_value=9)),
    st.tuples(st.just("sync")),
)


@given(
    device_backed=st.booleans(),
    ops=st.lists(op_strategy, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_fs_matches_oracle(device_backed, ops):
    """Random op sequences must match a plain dict-of-bytes model."""
    vfs = _vfs(device_backed)
    oracle = {}
    for op in ops:
        kind = op[0]
        if kind == "write":
            _, index, offset, data = op
            path = f"/f{index}"
            handle = vfs.open(path, {O_RDWR, O_CREAT})
            vfs.pwrite(handle, data, offset)
            vfs.close(handle)
            current = bytearray(oracle.get(path, b""))
            if len(current) < offset + len(data):
                current.extend(b"\x00" * (offset + len(data) - len(current)))
            current[offset : offset + len(data)] = data
            oracle[path] = bytes(current)
        elif kind == "truncate":
            _, index, size = op
            path = f"/f{index}"
            if path in oracle:
                vfs.truncate(path, size)
                current = oracle[path]
                oracle[path] = (
                    current[:size] + b"\x00" * max(0, size - len(current))
                )
        elif kind == "delete":
            _, index = op
            path = f"/f{index}"
            if path in oracle:
                vfs.unlink(path)
                del oracle[path]
        elif kind == "sync":
            root = vfs.ns.root_mount().fs
            root.sync_all()
            root.drop_caches()
    for path, expected in oracle.items():
        assert vfs.read_file(path) == expected
    for index in range(10):
        path = f"/f{index}"
        if path not in oracle:
            assert not vfs.exists(path)


@given(
    names=st.lists(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
            min_size=1,
            max_size=12,
        ),
        min_size=1,
        max_size=15,
        unique=True,
    )
)
@settings(max_examples=30, deadline=None)
def test_readdir_is_sorted_and_complete(names):
    vfs = _vfs(False)
    for name in names:
        vfs.write_file(f"/{name}", b"x")
    listing = vfs.readdir("/")
    assert listing == sorted(names)


@given(
    depth=st.integers(min_value=1, max_value=12),
    payload=st.binary(min_size=0, max_size=100),
)
@settings(max_examples=30, deadline=None)
def test_nested_path_roundtrip(depth, payload):
    vfs = _vfs(False)
    path = "/" + "/".join(f"d{i}" for i in range(depth))
    vfs.makedirs(path)
    vfs.write_file(f"{path}/leaf", payload)
    assert vfs.read_file(f"{path}/leaf") == payload
    dotted = "/" + "/".join(f"d{i}/." for i in range(depth)) + "/leaf"
    assert vfs.read_file(dotted) == payload
