"""The arm64 architecture port (§5 future work).

"An architecture port would require to extend the system call
injection, as well as register and page table handling."  These tests
exercise exactly those three surfaces: AArch64 stage-1 page tables,
the x0..x30/sp/pc register file (TTBR1_EL1 instead of CR3), and the
unchanged injection pipeline on top.
"""

import itertools

import pytest

from repro.arch import ARM64, X86_64, arch_by_name
from repro.errors import PageFaultError
from repro.guestos.version import ALL_TESTED_VERSIONS, KernelVersion
from repro.mem.pagetable_arm64 import Arm64PageTableBuilder, Arm64PageTableWalker
from repro.mem.physmem import PhysicalMemory
from repro.testbed import Testbed
from repro.units import MiB, PAGE_SIZE


# -- arch descriptors ------------------------------------------------------------

def test_arch_lookup():
    from repro.arch import RISCV64

    assert arch_by_name("x86_64") is X86_64
    assert arch_by_name("arm64") is ARM64
    assert arch_by_name("riscv64") is RISCV64
    with pytest.raises(ValueError):
        arch_by_name("mips64")


def test_register_files_differ():
    assert X86_64.ip_register == "rip" and ARM64.ip_register == "pc"
    assert X86_64.pt_root_sreg == "cr3" and ARM64.pt_root_sreg == "ttbr1_el1"
    assert len(ARM64.gp_registers) == 34      # x0..x30 + sp + pc + pstate
    assert "x30" in ARM64.gp_registers


def test_scratch_area_fits_both_register_files():
    from repro.sideload import SCRATCH_SIZE

    assert SCRATCH_SIZE >= len(ARM64.gp_registers) * 8
    assert SCRATCH_SIZE >= len(X86_64.gp_registers) * 8


# -- AArch64 page tables -----------------------------------------------------------

@pytest.fixture()
def arm_tables():
    mem = PhysicalMemory(16 * MiB)
    alloc = itertools.count(1 * MiB, PAGE_SIZE)
    builder = Arm64PageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = Arm64PageTableWalker(mem.read_u64)
    return mem, builder, walker, builder.new_root()


def test_arm64_map_translate(arm_tables):
    _, builder, walker, ttbr = arm_tables
    vaddr = ARM64.kernel_text_base
    builder.map_page(ttbr, vaddr, 0x200000)
    tr = walker.translate(ttbr, vaddr + 0x123)
    assert tr.paddr == 0x200123


def test_arm64_unmapped_faults(arm_tables):
    _, _, walker, ttbr = arm_tables
    with pytest.raises(PageFaultError, match="translation fault"):
        walker.translate(ttbr, ARM64.kernel_text_base)


def test_arm64_descriptor_encoding(arm_tables):
    """The leaf descriptor must be a valid AArch64 L3 page descriptor."""
    mem, builder, walker, ttbr = arm_tables
    vaddr = ARM64.kernel_text_base
    builder.map_page(ttbr, vaddr, 0x300000, writable=False, nx=True)
    tr = walker.translate(ttbr, vaddr)
    descriptor = mem.read_u64(tr.pte_paddr)
    assert descriptor & 0b11 == 0b11           # page descriptor
    assert descriptor & (1 << 10)              # AF set
    assert descriptor & (1 << 7)               # AP[2]: read-only
    assert descriptor & (1 << 54)              # UXN


def test_arm64_range_and_unmap(arm_tables):
    _, builder, walker, ttbr = arm_tables
    base = ARM64.kernel_text_base
    builder.map_range(ttbr, base, 0x400000, 5 * PAGE_SIZE)
    found = list(walker.iter_present_range(ttbr, base, base + 1 * MiB))
    assert len(found) == 5
    builder.unmap_page(ttbr, base + PAGE_SIZE)
    assert not walker.is_mapped(ttbr, base + PAGE_SIZE)
    assert walker.is_mapped(ttbr, base)


# -- end-to-end on arm64 --------------------------------------------------------------

def test_arm64_guest_boots_with_arm_registers():
    tb = Testbed(arch="arm64")
    hv = tb.launch_qemu()
    vcpu = hv.vm.vcpus[0]
    assert "pc" in vcpu.regs and "rip" not in vcpu.regs
    assert vcpu.sregs["ttbr1_el1"] == hv.guest.cr3
    assert vcpu.regs["pc"] == hv.guest.idle_vaddr


def test_arm64_full_attach():
    tb = Testbed(arch="arm64")
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    assert session.report.kernel_vbase == hv.guest.image.vbase
    assert ARM64.kernel_text_base <= session.report.kernel_vbase
    assert session.console.run_command("echo arm").output == "arm"
    # Trampoline restored the arm64 context.
    assert hv.vm.vcpus[0].regs["pc"] == hv.guest.idle_vaddr
    assert hv.guest.panicked is None


@pytest.mark.parametrize("version", [ALL_TESTED_VERSIONS[0], ALL_TESTED_VERSIONS[-1]],
                         ids=str)
def test_arm64_kernel_versions(version):
    """Symbol-table eras are arch-independent; both parse on arm64."""
    tb = Testbed(arch="arm64")
    hv = tb.launch_qemu(guest_version=version)
    session = tb.vmsh().attach(hv.pid)
    assert session.report.ksymtab_layout == version.ksymtab_layout


def test_arm64_wrap_syscall_mode():
    tb = Testbed(arch="arm64", ioregionfd=False)
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    assert session.mmio_mode == "wrap_syscall"
    assert session.console.run_command("echo wrapped-arm").output == "wrapped-arm"


def test_arm64_use_case_rescue():
    from repro.usecases.rescue import RescueService, verify_password_reset

    tb = Testbed(arch="arm64")
    hv = tb.launch_qemu()
    report = RescueService(tb.vmsh()).reset_password(hv, "root", "armpw")
    assert verify_password_reset(report, "root")


def test_kaslr_ranges_do_not_overlap_across_arches():
    x_lo = X86_64.kernel_text_base
    a_lo = ARM64.kernel_text_base
    assert x_lo != a_lo
    # A VMSH build for the wrong arch would scan the wrong window and
    # find nothing — exercised implicitly by find_kernel using the
    # gateway's arch.
