"""The RISC-V architecture port (PR 9): Sv39/Sv48 guests end to end.

The third ISA behind the :class:`repro.arch.Arch` interface: genuine
Sv39/Sv48 PTE encoding built by the guest kernel at boot and walked
host-side, the x0-x31/pc register file with ``satp``'s MODE|PPN root
encoding, the always-"absolute" riscv ksymtab layout, and the
wrap_syscall-only attach (ioregionfd never landed for riscv).
"""

import itertools

import pytest

from repro.arch import (
    ARM64,
    RISCV64,
    RISCV64_SV48,
    SATP_MODE_SV39,
    SATP_MODE_SV48,
    X86_64,
    arch_by_name,
)
from repro.errors import PageFaultError
from repro.guestos.version import ALL_TESTED_VERSIONS, KernelVersion
from repro.mem.pagetable_riscv import (
    PTE_A,
    PTE_D,
    PTE_G,
    PTE_R,
    PTE_V,
    PTE_W,
    PTE_X,
    RiscvPageTableBuilder,
    RiscvPageTableWalker,
)
from repro.mem.physmem import PhysicalMemory
from repro.testbed import Testbed
from repro.units import GiB, MiB, PAGE_SIZE


# -- arch descriptors ------------------------------------------------------------

def test_arch_descriptors():
    assert arch_by_name("riscv64") is RISCV64
    assert arch_by_name("riscv64_sv48") is RISCV64_SV48
    assert RISCV64.family == RISCV64_SV48.family == "riscv64"
    assert RISCV64.pt_root_sreg == "satp"
    assert RISCV64.ip_register == "pc" and RISCV64.sp_register == "x2"
    assert len(RISCV64.gp_registers) == 33          # x0..x31 + pc
    assert not RISCV64.ioregionfd_available


def test_satp_encode_decode_roundtrip():
    root = 0x0030_0000
    sv39 = RISCV64.encode_pt_root(root)
    sv48 = RISCV64_SV48.encode_pt_root(root)
    assert sv39 >> 60 == SATP_MODE_SV39
    assert sv48 >> 60 == SATP_MODE_SV48
    assert RISCV64.pt_root_paddr(sv39) == root
    assert RISCV64_SV48.pt_root_paddr(sv48) == root
    # x86/arm64 roots are ~identity by contrast.
    assert X86_64.encode_pt_root(root) == root
    assert ARM64.encode_pt_root(root) == root


def test_scratch_area_derived_from_register_file():
    from repro.sideload import SCRATCH_SIZE, build_blob, parse_blob

    assert RISCV64.scratch_size == 33 * 8
    assert SCRATCH_SIZE == max(
        a.scratch_size for a in (X86_64, ARM64, RISCV64)
    )
    blob = build_blob("p", [], {}, b"", arch=RISCV64)
    parsed = parse_blob(lambda off, n: blob[off : off + n])
    assert parsed.scratch_size == RISCV64.scratch_size


def test_pack_unpack_context_roundtrip():
    regs = {r: i * 0x1111 for i, r in enumerate(RISCV64.gp_registers)}
    packed = RISCV64.pack_context(regs)
    assert len(packed) == RISCV64.scratch_size
    assert RISCV64.unpack_context(packed) == regs
    with pytest.raises(ValueError):
        RISCV64.unpack_context(packed[:-8])


# -- Sv39 / Sv48 page tables ------------------------------------------------------

@pytest.fixture(params=["riscv64", "riscv64_sv48"])
def riscv_tables(request):
    arch = arch_by_name(request.param)
    mem = PhysicalMemory(32 * MiB)
    alloc = itertools.count(1 * MiB, PAGE_SIZE)
    builder = RiscvPageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = RiscvPageTableWalker(mem.read_u64)
    satp = arch.encode_pt_root(builder.new_root())
    return arch, mem, builder, walker, satp


def test_riscv_map_translate(riscv_tables):
    arch, _, builder, walker, satp = riscv_tables
    vaddr = arch.kernel_text_base
    builder.map_page(satp, vaddr, 0x200000)
    tr = walker.translate(satp, vaddr + 0x456)
    assert tr.paddr == 0x200456
    assert tr.level == 1


def test_riscv_levels_differ_by_mode(riscv_tables):
    """Sv39 spends 3 table pages per fresh mapping path, Sv48 spends 4."""
    arch, _, builder, walker, satp = riscv_tables
    builder.map_page(satp, arch.kernel_text_base, 0x200000)
    expected = 3 if arch is RISCV64 else 4   # root + intermediates
    assert len(builder.tables_allocated) == expected


def test_riscv_pte_encoding(riscv_tables):
    """Leaf entries are genuine Sv39/Sv48 PTEs: flag bits + PPN field."""
    arch, mem, builder, walker, satp = riscv_tables
    vaddr = arch.kernel_text_base
    builder.map_page(satp, vaddr, 0x300000, writable=False, nx=True)
    tr = walker.translate(satp, vaddr)
    pte = mem.read_u64(tr.pte_paddr)
    assert pte & PTE_V and pte & PTE_R
    assert not pte & PTE_W and not pte & PTE_X       # ro, never-execute
    assert pte & PTE_A and pte & PTE_D and pte & PTE_G
    assert ((pte >> 10) << 12) & ~0xFFF == 0x300000  # PPN encodes the frame
    assert arch.translation_perms(tr) == frozenset({"r"})


def test_riscv_unmapped_faults(riscv_tables):
    arch, _, _, walker, satp = riscv_tables
    with pytest.raises(PageFaultError, match="not valid"):
        walker.translate(satp, arch.kernel_text_base)


def test_riscv_range_and_unmap(riscv_tables):
    arch, _, builder, walker, satp = riscv_tables
    base = arch.kernel_text_base
    builder.map_range(satp, base, 0x400000, 5 * PAGE_SIZE)
    found = list(walker.iter_present_range(satp, base, base + 1 * MiB))
    assert len(found) == 5
    builder.unmap_page(satp, base + PAGE_SIZE)
    assert not walker.is_mapped(satp, base + PAGE_SIZE)
    assert walker.is_mapped(satp, base)


def test_riscv_megapage_and_gigapage():
    """R/W/X on a non-last-level PTE is a superpage leaf (2M / 1G)."""
    mem = PhysicalMemory(64 * MiB)
    alloc = itertools.count(1 * MiB, PAGE_SIZE)
    builder = RiscvPageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = RiscvPageTableWalker(mem.read_u64)
    satp = RISCV64.encode_pt_root(builder.new_root())
    root = RISCV64.pt_root_paddr(satp)
    vaddr = RISCV64.kernel_text_base

    # Gigapage leaf straight in the root table (VPN[2] slot).
    vpn2 = (vaddr >> 30) & 0x1FF
    giga_frame = 1 * GiB
    mem.write_u64(
        root + vpn2 * 8,
        ((giga_frame >> 12) << 10) | PTE_V | PTE_R | PTE_W | PTE_X | PTE_A | PTE_D,
    )
    tr = walker.translate(satp, vaddr + 0x123456)
    assert tr.level == 3
    assert tr.paddr == giga_frame + ((vaddr + 0x123456) & ((1 << 30) - 1))

    # Megapage leaf one level down.
    l1 = next(alloc)
    for i in range(512):
        mem.write_u64(l1 + i * 8, 0)
    mem.write_u64(root + vpn2 * 8, ((l1 >> 12) << 10) | PTE_V)
    vpn1 = (vaddr >> 21) & 0x1FF
    mega_frame = 16 * MiB
    mem.write_u64(
        l1 + vpn1 * 8,
        ((mega_frame >> 12) << 10) | PTE_V | PTE_R | PTE_X | PTE_A,
    )
    tr = walker.translate(satp, vaddr + 0x54321)
    assert tr.level == 2
    assert tr.paddr == mega_frame + ((vaddr + 0x54321) & ((1 << 21) - 1))
    assert RISCV64.translation_perms(tr) == frozenset({"r", "x"})

    # A misaligned superpage (nonzero low PPN bits) must fault.
    mem.write_u64(
        l1 + vpn1 * 8,
        (((mega_frame + PAGE_SIZE) >> 12) << 10) | PTE_V | PTE_R | PTE_A,
    )
    with pytest.raises(PageFaultError, match="misaligned superpage"):
        walker.translate(satp, vaddr)


def test_walker_is_mode_agnostic():
    """One walker serves Sv39 and Sv48 roots: MODE is decoded per walk."""
    mem = PhysicalMemory(32 * MiB)
    alloc = itertools.count(1 * MiB, PAGE_SIZE)
    builder = RiscvPageTableBuilder(mem.read_u64, mem.write_u64, lambda: next(alloc))
    walker = RiscvPageTableWalker(mem.read_u64)
    vaddr = RISCV64.kernel_text_base
    satp39 = RISCV64.encode_pt_root(builder.new_root())
    satp48 = RISCV64_SV48.encode_pt_root(builder.new_root())
    builder.map_page(satp39, vaddr, 0x500000)
    builder.map_page(satp48, vaddr, 0x600000)
    assert walker.translate(satp39, vaddr).paddr == 0x500000
    assert walker.translate(satp48, vaddr).paddr == 0x600000
    # A Bare-mode satp (MODE=0) cannot be walked.
    with pytest.raises(PageFaultError, match="not Sv39/Sv48"):
        walker.translate(0x300, vaddr)


# -- end-to-end on riscv64 --------------------------------------------------------

@pytest.mark.parametrize("arch_name", ["riscv64", "riscv64_sv48"])
def test_riscv_guest_boots_with_satp(arch_name):
    arch = arch_by_name(arch_name)
    tb = Testbed(arch=arch_name)
    hv = tb.launch_qemu()
    vcpu = hv.vm.vcpus[0]
    assert "pc" in vcpu.regs and "rip" not in vcpu.regs
    satp = vcpu.sregs["satp"]
    assert satp >> 60 == (SATP_MODE_SV39 if arch is RISCV64 else SATP_MODE_SV48)
    assert satp == hv.guest.cr3
    # The root table is real bytes in guest RAM at the decoded PPN.
    root = arch.pt_root_paddr(satp)
    assert hv.vm.guest_memory().read(root, 8)  # readable, in-bounds
    assert vcpu.regs["pc"] == hv.guest.idle_vaddr


@pytest.mark.parametrize("arch_name", ["riscv64", "riscv64_sv48"])
def test_riscv_full_attach(arch_name):
    tb = Testbed(arch=arch_name)
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    # No ioregionfd on riscv: attach must ride the wrap_syscall fallback.
    assert session.mmio_mode == "wrap_syscall"
    assert session.report.kernel_vbase == hv.guest.image.vbase
    assert session.console.run_command("echo riscv").output == "riscv"
    assert hv.vm.vcpus[0].regs["pc"] == hv.guest.idle_vaddr
    assert hv.guest.panicked is None


def test_riscv_ioregionfd_mode_refused():
    from repro.errors import VmshError

    tb = Testbed(arch="riscv64")
    hv = tb.launch_qemu()
    with pytest.raises(VmshError, match="ioregionfd"):
        tb.vmsh().attach(hv.pid, mmio_mode="ioregionfd")


@pytest.mark.parametrize("version", [ALL_TESTED_VERSIONS[0], ALL_TESTED_VERSIONS[-1]],
                         ids=str)
def test_riscv_ksymtab_always_absolute(version):
    """riscv never selected HAVE_ARCH_PREL32_RELOCATIONS: every kernel
    version exports absolute ksymtab entries, and VMSH's parser must
    detect that layout — not the version's x86 layout."""
    assert RISCV64.ksymtab_layout(version) == "absolute"
    tb = Testbed(arch="riscv64")
    hv = tb.launch_qemu(guest_version=version)
    session = tb.vmsh().attach(hv.pid)
    assert session.report.ksymtab_layout == "absolute"


def test_riscv_vmm_support_rows():
    """The per-arch hypervisor rows: firecracker and cloud-hypervisor
    ship no riscv port; qemu/kvmtool/crosvm do."""
    from repro.errors import KvmError

    tb = Testbed(arch="riscv64")
    tb.launch_qemu()
    tb.launch_kvmtool()
    tb.launch_crosvm()
    with pytest.raises(KvmError, match="no riscv64 port"):
        tb.launch_firecracker(seccomp=False)
    with pytest.raises(KvmError, match="no riscv64 port"):
        tb.launch_cloud_hypervisor()


def test_riscv_snapshot_restore_roundtrip():
    """Snapshot/restore round-trips the riscv register file bit-exactly."""
    tb = Testbed(arch="riscv64")
    hv = tb.launch_qemu()
    snap = tb.snapshot(hv)
    vcpu = hv.vm.vcpus[0]
    regs_before = dict(vcpu.regs)
    sregs_before = dict(vcpu.sregs)
    vcpu.regs["x5"] = 0xDEAD
    vcpu.sregs["stvec"] = 0xBEEF
    tb.restore(snap, hv)
    assert dict(vcpu.regs) == regs_before
    assert dict(vcpu.sregs) == sregs_before
    assert vcpu.sregs["satp"] >> 60 == SATP_MODE_SV39
    # The restored guest still serves a full attach.
    session = tb.vmsh().attach(hv.pid)
    assert session.console.run_command("echo restored").output == "restored"


def test_riscv_use_case_rescue():
    from repro.usecases.rescue import RescueService, verify_password_reset

    tb = Testbed(arch="riscv64")
    hv = tb.launch_qemu()
    report = RescueService(tb.vmsh()).reset_password(hv, "root", "riscvpw")
    assert verify_password_reset(report, "root")
