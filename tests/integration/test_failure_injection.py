"""Failure injection: every stage of the pipeline must fail loudly.

The point of modelling the side-load at byte level is that *wrong*
side-loads are detectable.  These tests corrupt each stage and assert
the precise failure mode.
"""

import struct

import pytest

from repro.core.gateway import GuestMemoryGateway
from repro.core.kernel_lib import KernelLibProgram
from repro.core.libbuild import build_library, plan_library
from repro.errors import (
    GuestPanicError,
    PtraceError,
    SideloadError,
    SymbolResolutionError,
    VfsError,
    VmshError,
)
from repro.guestos.version import KernelVersion
from repro.sideload import parse_blob, reloc_slot_offset
from repro.testbed import Testbed


def _booted():
    tb = Testbed()
    hv = tb.launch_qemu()
    return tb, hv


def test_unrelocated_library_panics_guest():
    """Jumping into a blob whose relocations were never patched."""
    tb, hv = _booted()
    guest = hv.guest
    plan = plan_library(KernelVersion(5, 10))
    blob = build_library(plan)
    gpa = guest.alloc_guest_pages((len(blob) + 4095) // 4096)
    guest.memory.write(gpa, blob)
    from repro.mem.pagetable import PageTableBuilder

    builder = PageTableBuilder(
        guest.memory.read_u64, guest.memory.write_u64, guest._alloc_table_page
    )
    lib_vaddr = guest.image.vbase + guest.image.size
    builder.map_range(guest.cr3, lib_vaddr, gpa, (len(blob) + 4095) // 4096 * 4096)
    with pytest.raises(GuestPanicError, match="unrelocated"):
        guest.execute_at(lib_vaddr, guest.boot_vcpu)


def test_wrong_version_structs_panic_guest():
    """Library built for v4.4 layouts side-loaded into a v5.10 guest."""
    tb, hv = _booted()
    guest = hv.guest
    plan = plan_library(KernelVersion(4, 4))       # wrong era on purpose
    blob = bytearray(build_library(plan))
    # Patch relocations correctly so only the struct layouts are wrong.
    from repro.guestos.kfunctions import REQUIRED_KERNEL_FUNCTIONS

    for index, name in enumerate(REQUIRED_KERNEL_FUNCTIONS):
        offset = reloc_slot_offset(bytes(blob), index)
        struct.pack_into("<Q", blob, offset, guest.image.symbols[name])
    gpa = guest.alloc_guest_pages((len(blob) + 4095) // 4096)
    guest.memory.write(gpa, bytes(blob))
    from repro.mem.pagetable import PageTableBuilder

    builder = PageTableBuilder(
        guest.memory.read_u64, guest.memory.write_u64, guest._alloc_table_page
    )
    lib_vaddr = guest.image.vbase + guest.image.size
    builder.map_range(guest.cr3, lib_vaddr, gpa, (len(blob) + 4095) // 4096 * 4096)
    with pytest.raises(GuestPanicError):
        guest.execute_at(lib_vaddr, guest.boot_vcpu)


def test_partially_mapped_blob_panics():
    """If VMSH maps too few pages, parsing runs off the mapping."""
    tb, hv = _booted()
    guest = hv.guest
    plan = plan_library(KernelVersion(5, 10))
    blob = build_library(plan)
    gpa = guest.alloc_guest_pages((len(blob) + 4095) // 4096)
    guest.memory.write(gpa, blob)
    from repro.mem.pagetable import PageTableBuilder

    builder = PageTableBuilder(
        guest.memory.read_u64, guest.memory.write_u64, guest._alloc_table_page
    )
    lib_vaddr = guest.image.vbase + guest.image.size
    builder.map_range(guest.cr3, lib_vaddr, gpa, 4096)   # only one page!
    with pytest.raises(GuestPanicError):
        guest.execute_at(lib_vaddr, guest.boot_vcpu)


def test_missing_symbol_aborts_attach_cleanly():
    """A guest whose kernel lacks a required export is unsupported."""
    tb, hv = _booted()
    guest = hv.guest
    sections = guest.image.sections
    # Remove 'kernel_wait4' from the strings section: the reference
    # check will reject its entry, so resolution must fail.
    strings = guest.read_virt(sections.strings_vaddr, sections.strings_size)
    broken = strings.replace(b"kernel_wait4\x00", b"kernel_w4it4\x00")
    guest.write_virt(sections.strings_vaddr, broken)
    with pytest.raises(SymbolResolutionError):
        tb.vmsh().attach(hv.pid)
    # The hypervisor must be released (ptrace detached) on failure.
    assert hv.process.tracer is None


def test_failed_attach_releases_ptrace():
    tb = Testbed()
    hv = tb.launch_cloud_hypervisor()
    from repro.errors import HypervisorNotSupportedError

    with pytest.raises(HypervisorNotSupportedError):
        tb.vmsh().attach(hv.pid)
    # A second attacher (e.g. a debugger) can take over.
    other = tb.host.spawn_process("gdb")
    from repro.host.ptrace import attach as ptrace_attach

    session = ptrace_attach(tb.host, other, hv.process)
    session.detach()


def test_attach_to_dead_process():
    from repro.errors import NoSuchProcessError

    tb, hv = _booted()
    tb.host.exit_process(hv.pid)
    with pytest.raises(NoSuchProcessError):
        tb.vmsh().attach(hv.pid)


def test_gateway_rejects_unmapped_gpa():
    tb, hv = _booted()
    from repro.host.ebpf import MemslotRecord
    from repro.virtio.memio import GpaTranslator

    translator = GpaTranslator([MemslotRecord(0, 0, 4096, 0x1000)])
    with pytest.raises(VmshError, match="not covered"):
        translator.to_hva(1 << 40, 8)


def test_corrupt_config_tlv_detected():
    tb, hv = _booted()
    guest = hv.guest
    plan = plan_library(KernelVersion(5, 10))
    blob = bytearray(build_library(plan))
    parsed = parse_blob(lambda off, ln: bytes(blob[off : off + ln]))
    # Find the config section offset from the header and shred it.
    header = struct.unpack_from("<16sIIIIIIIIIII", blob, 0)
    config_off, config_len = header[6], header[7]
    blob[config_off : config_off + 4] = b"\xff\xff\xff\xff"
    with pytest.raises(SideloadError, match="corrupt SELF config"):
        parse_blob(lambda off, ln: bytes(blob[off : off + ln]))


def test_detach_in_wrap_mode_disables_devices():
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    assert session.console.run_command("echo on").output == "on"
    session.detach()
    # Without the ptrace wrapper, MMIO to the vmsh windows is unclaimed.
    from repro.errors import KvmError

    with pytest.raises(Exception):
        session.console.run_command("echo off")


def test_double_detach_is_idempotent():
    tb, hv = _booted()
    session = tb.vmsh().attach(hv.pid)
    session.detach()
    session.detach()  # must not raise
