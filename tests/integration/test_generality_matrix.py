"""Table 1: hypervisor support matrix and kernel-version sweep (E2/E3)."""

import pytest

from repro.errors import HypervisorNotSupportedError, SeccompViolationError
from repro.guestos.version import ALL_TESTED_VERSIONS
from repro.hypervisors import (
    CloudHypervisor,
    Crosvm,
    Firecracker,
    Kvmtool,
    Qemu,
)
from repro.testbed import Testbed


SUPPORTED = [Qemu, Kvmtool, Crosvm]


@pytest.mark.parametrize("cls", SUPPORTED, ids=lambda c: c.NAME)
def test_supported_hypervisors_attach(cls):
    tb = Testbed()
    hv = tb.launch(cls)
    session = tb.vmsh().attach(hv.pid)
    assert session.console.run_command("echo attached").output == "attached"


def test_firecracker_seccomp_blocks_attach():
    """Firecracker's per-thread filters reject injected syscalls (§6.2)."""
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=True)
    with pytest.raises(SeccompViolationError):
        tb.vmsh().attach(hv.pid)


def test_firecracker_without_seccomp_attaches():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=False)
    session = tb.vmsh().attach(hv.pid)
    assert session.console.run_command("echo fc").output == "fc"


def test_cloud_hypervisor_unsupported():
    """Cloud Hypervisor: MSI-X-only interrupts, no MMIO attach (Table 1)."""
    tb = Testbed()
    hv = tb.launch_cloud_hypervisor()
    with pytest.raises(HypervisorNotSupportedError, match="interrupt"):
        tb.vmsh().attach(hv.pid)
    # The failed attach must leave the guest running and unpanicked.
    assert hv.guest.panicked is None
    assert hv.process.tracer is None


@pytest.mark.parametrize("version", ALL_TESTED_VERSIONS, ids=str)
def test_all_lts_kernels_attach(version):
    """E3: attach works on every LTS from v4.4 to v5.10 (+v5.12)."""
    tb = Testbed()
    hv = tb.launch_qemu(guest_version=version)
    session = tb.vmsh().attach(hv.pid)
    assert session.report.kernel_version == version
    assert session.report.ksymtab_layout == version.ksymtab_layout
    assert session.console.run_command("echo ok").output == "ok"
    assert hv.guest.panicked is None


def test_wrap_syscall_mode_on_unpatched_kernel():
    """Without the ioregionfd patch, attach falls back to ptrace."""
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    assert session.mmio_mode == "wrap_syscall"
    assert session.console.run_command("echo wrapped").output == "wrapped"
    # ptrace stays attached in this mode (needed for dispatch).
    assert session._ptrace is not None and session._ptrace.attached


def test_explicit_mode_request_honoured():
    tb = Testbed(ioregionfd=True)
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, mmio_mode="wrap_syscall")
    assert session.mmio_mode == "wrap_syscall"


def test_ioregionfd_requested_but_unavailable():
    from repro.errors import VmshError

    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu()
    with pytest.raises(VmshError, match="ioregionfd"):
        tb.vmsh().attach(hv.pid, mmio_mode="ioregionfd")


def test_attach_to_non_hypervisor_process():
    from repro.errors import SideloadError

    tb = Testbed()
    bystander = tb.host.spawn_process("nginx")
    with pytest.raises(SideloadError, match="no KVM VM"):
        tb.vmsh().attach(bystander.pid)


def test_two_vms_same_host_attach_independently():
    tb = Testbed()
    hv1 = tb.launch_qemu()
    hv2 = tb.launch_qemu()
    s1 = tb.vmsh().attach(hv1.pid)
    s2 = tb.vmsh().attach(hv2.pid)
    assert s1.console.run_command("echo one").output == "one"
    assert s2.console.run_command("echo two").output == "two"
    assert hv1.guest.image.vbase != hv2.guest.image.vbase  # distinct KASLR
