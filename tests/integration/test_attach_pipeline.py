"""The complete VMSH attach pipeline, end to end (the paper's core)."""

import pytest

from repro.core.libbuild import VMSH_MMIO_BASE
from repro.guestos.version import KernelVersion
from repro.testbed import Testbed
from repro.units import MiB


@pytest.fixture(scope="module")
def attached():
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition(64 * MiB))
    vmsh = tb.vmsh()
    session = vmsh.attach(hv.pid)
    return tb, hv, vmsh, session


def test_report_describes_the_guest(attached):
    tb, hv, vmsh, session = attached
    report = session.report
    assert report.kernel_version == KernelVersion(5, 10)
    assert report.ksymtab_layout == "prel32_ns"
    assert report.kernel_vbase == hv.guest.image.vbase
    assert report.mmio_mode == "ioregionfd"
    assert report.attach_ns > 0
    assert report.symbols_found >= 13


def test_report_memory_fast_path_counters(attached):
    """The attach report exposes what the copy fast path actually did."""
    tb, hv, vmsh, session = attached
    report = session.report
    assert report.copy_path == "vectored"
    gateway = report.accessor_stats["gateway"]
    device = report.accessor_stats["device"]
    # Binary analysis + library load all went through the gateway...
    assert gateway["calls"] > 0
    assert gateway["bytes_read"] > 0
    assert gateway["bytes_written"] > 0
    # ...and the device side batched scattered segments into fewer calls.
    assert device["segments_coalesced"] > 0
    assert device["calls"] < device["segments"]
    # The software TLB both missed (first walks) and hit (reuse).
    assert report.tlb_misses > 0
    assert report.tlb_hits > 0
    assert 0.0 < report.tlb_hit_rate < 1.0
    # Live counters keep ticking past the attach-time snapshot.
    live = session.memory_stats()
    assert live["device"]["calls"] >= device["calls"]
    assert live["tlb"]["hits"] >= report.tlb_hits


def test_library_mapped_after_kernel_image(attached):
    """Fig. 3: the library lands right after the kernel in vaddr space."""
    tb, hv, vmsh, session = attached
    from repro.guestos.loader import KERNEL_IMAGE_SIZE

    assert session.report.lib_vaddr == hv.guest.image.vbase + KERNEL_IMAGE_SIZE


def test_library_in_fresh_high_memslot(attached):
    tb, hv, vmsh, session = attached
    slots = hv.vm.memslots()
    assert len(slots) == 2
    high = max(slots, key=lambda s: s.gpa)
    assert high.gpa >= 0x1_0000_0000


def test_guest_klog_shows_sideload(attached):
    tb, hv, vmsh, session = attached
    log = "\n".join(hv.guest.klog)
    assert "vmsh: kernel library loaded" in log
    assert "vmsh: console device" in log
    assert "vmsh: block device" in log
    assert "vmsh: stage2 spawned" in log
    assert "vmsh: kernel library done" in log


def test_vcpu_context_restored(attached):
    """The trampoline must hand back the original RIP (idle loop)."""
    tb, hv, vmsh, session = attached
    assert hv.guest.boot_vcpu.regs["rip"] == hv.guest.idle_vaddr
    assert hv.guest.panicked is None


def test_devices_registered_in_guest(attached):
    tb, hv, vmsh, session = attached
    guest = hv.guest
    assert guest.vmsh_console is not None
    assert guest.vmsh_block is not None
    assert "vmshblk0" in guest.block_devices


def test_stage2_binary_copied_to_dev(attached):
    tb, hv, vmsh, session = attached
    content = hv.guest.kernel_vfs.read_file("/dev/.vmsh-stage2")
    assert content.startswith(b"#!SIMELF:vmsh-stage2")


def test_overlay_root_is_the_image(attached):
    tb, hv, vmsh, session = attached
    console = session.console
    listing = console.run_command("ls /").output
    assert "bin" in listing and "var" in listing
    assert console.run_command("cat /etc/os-release").output.startswith(
        'NAME="vmsh-overlay"'
    )


def test_guest_root_visible_under_var_lib_vmsh(attached):
    tb, hv, vmsh, session = attached
    out = session.console.run_command("cat /var/lib/vmsh/etc/hostname").output
    assert out == "guest"


def test_overlay_invisible_to_existing_guest_processes(attached):
    """Mount-namespace isolation (§4.4)."""
    tb, hv, vmsh, session = attached
    init_vfs = hv.guest.init_process.vfs
    assert not init_vfs.exists("/etc/os-release")       # overlay-only file
    assert init_vfs.read_file("/etc/hostname") == b"guest\n"


def test_overlay_writes_do_not_touch_guest_root(attached):
    tb, hv, vmsh, session = attached
    session.console.run_command("echo x")  # ensure overlay alive
    overlay = hv.guest.vmsh_overlay.overlay
    overlay.vfs.write_file("/tmp/vmsh-scratch", b"tmp")
    assert not hv.guest.init_process.vfs.exists("/tmp/vmsh-scratch")


def test_image_changes_land_in_served_image(attached):
    """Writes to the overlay root go through vmsh-blk to the image."""
    tb, hv, vmsh, session = attached
    overlay = hv.guest.vmsh_overlay.overlay
    overlay.vfs.write_file("/persisted.txt", b"persist-me")
    root_fs = overlay.namespace.root_mount().fs
    root_fs.sync_all()
    assert b"persist-me" in session.image_snapshot()


def test_mmio_windows_outside_hypervisor_region(attached):
    tb, hv, vmsh, session = attached
    assert all(base < VMSH_MMIO_BASE for base in hv._mmio_devices)


def test_privileges_dropped_after_setup(attached):
    """§4.5: capabilities are dropped before interacting further."""
    tb, hv, vmsh, session = attached
    assert not vmsh.process.has_capability("CAP_BPF")
    assert not vmsh.process.has_capability("CAP_SYS_ADMIN")


def test_qemu_disk_still_works_while_attached(attached):
    """Non-interference: the guest's own device is untouched."""
    tb, hv, vmsh, session = attached
    guest = hv.guest
    fs = guest.make_fs_on("vda", "xfs")
    vfs = guest.mount_filesystem(fs, "/mnt/check")
    vfs.write_file("/mnt/check/data", b"unaffected")
    assert vfs.read_file("/mnt/check/data") == b"unaffected"


def test_ioregionfd_session_survives_ptrace_detach(attached):
    """After setup the ptrace session is gone; devices still work."""
    tb, hv, vmsh, session = attached
    assert session._ptrace is None
    assert hv.process.tracer is None
    assert session.console.run_command("echo still-alive").output == "still-alive"


def test_container_aware_attach():
    """§4.4: attach adopts a container's context."""
    from repro.guestos.process import CONTAINER_CAPABILITIES, Credentials, GuestProcess

    tb = Testbed()
    hv = tb.launch_qemu()
    guest = hv.guest
    container_ns = guest.root_ns.clone()
    container = guest.processes.add(
        GuestProcess(
            "app-container",
            container_ns,
            creds=Credentials(uid=1001, gid=1001),
            pid_ns="container-7",
            cgroup="/docker/abc123",
            capabilities=CONTAINER_CAPABILITIES,
            security_profile="docker-default",
        )
    )
    session = tb.vmsh().attach(hv.pid, container_pid=container.pid)
    overlay = guest.vmsh_overlay
    shell_process = guest.processes.get(overlay.shell_pid)
    assert shell_process.creds.uid == 1001
    assert shell_process.security_profile == "docker-default"
    assert shell_process.cgroup == "/docker/abc123"
    assert shell_process.pid_ns == "container-7"
    assert shell_process.capabilities == CONTAINER_CAPABILITIES
    assert session.console.run_command("id").output == "uid=1001 gid=1001"


def test_reattach_supersedes_previous_session():
    """A second attach to the same VM must take over cleanly: the new
    ioregion registrations replace the detached session's."""
    tb = Testbed()
    hv = tb.launch_qemu()
    first = tb.vmsh().attach(hv.pid)
    assert first.console.run_command("echo first").output == "first"
    first.detach()
    second = tb.vmsh().attach(hv.pid, exec_device=True)
    assert second.console.run_command("echo second").output == "second"
    assert second.exec("echo via-exec").output == "via-exec"
