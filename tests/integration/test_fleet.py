"""Fleet concurrency: interleaved attaches and multi-VM queue servicing.

The discrete-event scheduler turns what used to be strictly sequential
entry points into cooperating tasks: N attach pipelines advance step by
step in a seed-determined interleaving, and each attached session's
virtqueues drain one queue per scheduling turn — so two VMs' I/O makes
progress side by side instead of one monopolising the simulation.
"""

import pytest

from repro.errors import VmshError
from repro.testbed import Testbed
from repro.units import MiB, SECTOR_SIZE


def _attach_with_service(tb, hv):
    session = tb.vmsh().attach(hv.pid)
    session.start_service(tb.scheduler)
    return session


# -- interleaved attaches ---------------------------------------------------------


def test_concurrent_attaches_complete_and_sessions_work():
    tb = Testbed()
    hvs = [tb.launch_qemu() for _ in range(3)]
    tasks = [
        tb.scheduler.spawn(tb.vmsh().attach_task(hv.pid), label=f"attach-{i}")
        for i, hv in enumerate(hvs)
    ]
    sessions = tb.scheduler.run(*tasks)
    assert len(sessions) == 3
    # Scheduler is idle again: sessions serve synchronously as before.
    for hv, session in zip(hvs, sessions):
        out = session.console.run_command("uname")
        assert "Linux" in out.output
        assert hv.guest.vmsh_overlay is not None
        session.detach()


def test_attach_steps_interleave_between_pipelines():
    tb = Testbed()
    hv_a, hv_b = tb.launch_qemu(), tb.launch_qemu()
    order = []

    def traced(vmsh, hv, name):
        gen = vmsh.attach_task(hv.pid)
        result = None
        while True:
            try:
                step = gen.send(result)
            except StopIteration as stop:
                return stop.value
            order.append((name, step))
            result = yield step

    task_a = tb.scheduler.spawn(traced(tb.vmsh(), hv_a, "a"), label="a")
    task_b = tb.scheduler.spawn(traced(tb.vmsh(), hv_b, "b"), label="b")
    tb.scheduler.run(task_a, task_b)
    names = [name for name, _ in order]
    assert set(names) == {"a", "b"}
    # Step boundaries really are yield points: neither pipeline runs
    # start-to-finish before the other gets a turn.
    first_b = names.index("b")
    assert "a" in names[first_b:]
    steps_a = [step for name, step in order if name == "a"]
    assert steps_a[0] == "discover" and steps_a[-1] == "drop_privileges"


# -- multi-VM queue servicing -----------------------------------------------------


def test_two_vm_block_io_interleaves():
    tb = Testbed()
    hv_a, hv_b = tb.launch_qemu(), tb.launch_qemu()
    session_a = _attach_with_service(tb, hv_a)
    session_b = _attach_with_service(tb, hv_b)
    disk_a = hv_a.guest.vmsh_block
    disk_b = hv_b.guest.vmsh_block
    progress = []

    def io(name, disk, fill):
        payload = bytes([fill]) * SECTOR_SIZE
        yield from disk.write_sectors_queued_task(
            [(i, payload) for i in range(8)]
        )
        progress.append((name, "wrote"))
        data = yield from disk.read_sectors_queued_task([(i, 1) for i in range(8)])
        progress.append((name, "read"))
        return b"".join(data)

    task_a = tb.scheduler.spawn(io("a", disk_a, 0xAA), label="io-a")
    task_b = tb.scheduler.spawn(io("b", disk_b, 0xBB), label="io-b")
    data_a, data_b = tb.scheduler.run(task_a, task_b)
    assert data_a == b"\xaa" * (8 * SECTOR_SIZE)
    assert data_b == b"\xbb" * (8 * SECTOR_SIZE)
    # Both VMs made progress in the same run; neither was starved
    # until the other finished.
    assert {name for name, _ in progress} == {"a", "b"}
    session_a.detach()
    session_b.detach()


def test_console_command_as_task_under_deferred_service():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = _attach_with_service(tb, hv)
    task = tb.scheduler.spawn(
        session.console.run_command_task("uname"), label="cmd"
    )
    (result,) = tb.scheduler.run(task)
    assert "Linux" in result.output
    session.detach()


def test_detach_restores_inline_servicing():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = _attach_with_service(tb, hv)
    session.detach()
    # After detach the device host is back to inline kicks: a second
    # session on the same guest works without any scheduler involved.
    session2 = tb.vmsh().attach(hv.pid)
    out = session2.console.run_command("uname")
    assert "Linux" in out.output
    session2.detach()


def test_service_task_rejects_double_start():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    session.start_service(tb.scheduler)
    with pytest.raises(VmshError):
        session.start_service(tb.scheduler)
    session.detach()


def test_blk_io_task_flows_while_attach_runs():
    """A neighbour's I/O is not paused by someone else's attach."""
    tb = Testbed()
    hv_a = tb.launch_qemu(disk=tb.nvme_partition(32 * MiB))
    hv_b = tb.launch_qemu()
    session_a = _attach_with_service(tb, hv_a)
    disk = hv_a.guest.vmsh_block

    def io():
        for i in range(6):
            data = yield from disk.read_sectors_queued_task([(i, 1)])
            assert len(data[0]) == SECTOR_SIZE
        return "io-done"

    io_task = tb.scheduler.spawn(io(), label="io")
    attach_task = tb.scheduler.spawn(
        tb.vmsh().attach_task(hv_b.pid), label="attach"
    )
    io_result, session_b = tb.scheduler.run(io_task, attach_task)
    assert io_result == "io-done"
    assert session_b.report.hypervisor_pid == hv_b.pid
    session_a.detach()
    session_b.detach()
