"""End-to-end serverless traffic over vmsh-net (PR 10 acceptance).

Eight functions on a two-shard fleet serve real request/response
frames through the fabric, while a debug shell attaches mid-traffic,
a second attach is killed by an armed fault plan and rolled back, and
a noisy neighbor floods a victim's ingress — all inside one
deterministic simulation.
"""

import pytest

from repro.sim.rng import MASTER_SEED
from repro.usecases.traffic import TrafficPlane, run_traffic


@pytest.fixture(scope="module")
def traffic_run():
    return run_traffic(seed=MASTER_SEED, requests=120)


def test_every_request_completes_over_the_fabric(traffic_run):
    tb, plane = traffic_run
    s = plane.summary()
    assert s["requests"] == 120
    assert s["completed"] == 120
    assert s["timeouts"] == 0
    # every request/response crossed the fabric, not the front door
    assert s["front_door"] == 0
    assert s["fabric_delivered"] >= 2 * 120


def test_at_least_eight_vms_serve(traffic_run):
    tb, plane = traffic_run
    assert plane.servers_installed >= 8
    live = [
        inst
        for shard in plane.fleet.shards
        for inst in shard.platform._instances.values()
        if getattr(inst, "traffic_server", False)
    ]
    assert len(live) >= 8


def test_mid_traffic_attach_and_rollback_both_ran(traffic_run):
    tb, plane = traffic_run
    assert "attached" in plane.attach_log
    assert "detached" in plane.attach_log
    assert any(e.startswith("rolled-back:") for e in plane.attach_log)


def test_noisy_neighbor_flood_is_absorbed_as_junk(traffic_run):
    tb, plane = traffic_run
    assert plane.flood_frames > 0
    assert plane.junk_frames == plane.flood_frames
    # the flood cost the victim time but no request was lost to it
    assert plane.summary()["completed"] == 120


def test_latency_histogram_shape(traffic_run):
    tb, plane = traffic_run
    lat = plane.percentiles()
    assert set(lat) == {"p50", "p90", "p99", "p999", "max"}
    assert 0 < lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["p999"] <= lat["max"]
    # cold starts put a long tail above the warm median
    assert lat["p99"] > 5 * lat["p50"]


def test_closed_loop_mode_completes_all_requests():
    tb, plane = run_traffic(seed=MASTER_SEED, requests=64, mode="closed",
                            workers=8)
    s = plane.summary()
    assert s["completed"] == 64
    assert s["front_door"] == 0
    assert plane.servers_installed >= 8


def test_fabric_drops_surface_as_timeouts():
    tb, plane = run_traffic(seed=MASTER_SEED, requests=80, mode="closed",
                            chaos=(), drop_rate=0.03)
    s = plane.summary()
    assert s["fabric_dropped"] > 0
    assert s["timeouts"] > 0
    assert s["completed"] + s["timeouts"] == 80
    # timed-out requests stay out of the latency distribution
    assert len(plane.latencies_ns) == s["completed"]


def test_front_door_fallback_for_serverless_restores():
    """Instances restored from the snapshot pool have no NIC in their
    cloned VM graph: the plane falls back to front-door execution
    rather than stalling the request."""
    tb, plane = run_traffic(seed=MASTER_SEED, requests=40, mode="closed",
                            chaos=())

    class NiclessInstance:
        instance_id = "inst-restored"
        terminated = False
        last_used_ns = 0
        hypervisor = None
        traffic_server = False

    gen = plane._net_execute("fn-0", {"i": 1})(
        plane.fleet.shards[0], NiclessInstance()
    )
    with pytest.raises(StopIteration) as stop:
        next(gen)
    assert stop.value.value is not None
    assert plane.front_door == 1
