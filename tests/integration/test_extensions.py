"""Extensions beyond the paper's prototype: vm-exec device (§2.2
vision), seccomp-aware injection (§6.2 future work), and the guest
monitor (§2.3)."""

import pytest

from repro.errors import SeccompViolationError, VmshError
from repro.testbed import Testbed
from repro.units import MSEC
from repro.usecases.monitoring import GuestMonitor


# -- vm-exec device -------------------------------------------------------------

@pytest.fixture()
def exec_session():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, exec_device=True)
    return tb, hv, session


def test_exec_runs_commands_in_overlay(exec_session):
    tb, hv, session = exec_session
    result = session.exec("echo hello")
    assert result.ok and result.output == "hello"
    result = session.exec(["cat", "/etc/os-release"])
    assert result.ok and "vmsh-overlay" in result.output


def test_exec_reaches_guest_root(exec_session):
    tb, hv, session = exec_session
    result = session.exec("cat /var/lib/vmsh/etc/hostname")
    assert result.output == "guest"


def test_exec_exit_codes(exec_session):
    tb, hv, session = exec_session
    assert session.exec("definitely-not-a-binary").exit_code == 127
    assert session.exec("cat /no/such/file").exit_code == 1
    assert session.exec("true").exit_code == 0


def test_exec_without_device_rejected():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)  # no exec device
    with pytest.raises(VmshError, match="exec_device"):
        session.exec("echo nope")


def test_exec_concurrent_with_console(exec_session):
    tb, hv, session = exec_session
    assert session.console.run_command("echo console").output == "console"
    assert session.exec("echo exec").output == "exec"
    assert session.console.run_command("echo console2").output == "console2"


def test_exec_device_in_guest_klog(exec_session):
    tb, hv, session = exec_session
    assert any("vmsh: exec device" in line for line in hv.guest.klog)


def test_exec_many_requests_recycle_buffers(exec_session):
    tb, hv, session = exec_session
    for i in range(20):
        assert session.exec(f"echo round{i}").output == f"round{i}"


# -- seccomp-aware injection -----------------------------------------------------

def test_heuristic_attaches_with_vmsh_profile():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=True, vmsh_seccomp_profile=True)
    session = tb.vmsh().attach(hv.pid, seccomp_aware=True)
    assert session.console.run_command("echo secure").output == "secure"
    # vCPU threads keep their strict filter throughout.
    vcpu_threads = [t for t in hv.process.threads if t.name.startswith("fc_vcpu")]
    assert all(
        t.seccomp_filter is not None and not t.seccomp_filter.allows("eventfd2")
        for t in vcpu_threads
    )


def test_heuristic_cannot_beat_fully_strict_profile():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=True)
    with pytest.raises(SeccompViolationError):
        tb.vmsh().attach(hv.pid, seccomp_aware=True)


def test_profile_without_heuristic_still_blocked():
    tb = Testbed()
    hv = tb.launch_firecracker(seccomp=True, vmsh_seccomp_profile=True)
    with pytest.raises(SeccompViolationError):
        tb.vmsh().attach(hv.pid)


# -- guest monitor ---------------------------------------------------------------------

def test_monitor_samples_processes_and_fs():
    tb = Testbed()
    hv = tb.launch_qemu()
    monitor = GuestMonitor(tb.vmsh())
    monitor.attach(hv)
    sample = monitor.sample()
    assert sample.kernel.startswith("Linux")
    names = {p.name for p in sample.processes}
    assert "init" in names
    assert "/" in sample.filesystems
    monitor.detach()


def test_monitor_sees_containerised_workloads():
    from repro.guestos.process import GuestProcess

    tb = Testbed()
    hv = tb.launch_qemu()
    guest = hv.guest
    guest.processes.add(
        GuestProcess("webapp", guest.root_ns.clone(), pid_ns="container-1",
                     cgroup="/docker/web")
    )
    monitor = GuestMonitor(tb.vmsh())
    monitor.attach(hv)
    sample = monitor.sample()
    contained = sample.containerised_processes()
    assert any(p.name == "webapp" and p.cgroup == "/docker/web" for p in contained)


def test_monitor_watch_advances_time():
    tb = Testbed()
    hv = tb.launch_qemu()
    monitor = GuestMonitor(tb.vmsh())
    monitor.attach(hv)
    samples = monitor.watch(samples=3, interval_ns=5 * MSEC)
    assert len(samples) == 3
    assert samples[2].time_ns - samples[0].time_ns >= 10 * MSEC


def test_monitor_watch_task_matches_sync_watch():
    """The cooperative watch collects the same view as the sync one."""
    tb = Testbed()
    hv = tb.launch_qemu()
    monitor = GuestMonitor(tb.vmsh())
    monitor.attach(hv)
    task = tb.scheduler.spawn(
        monitor.watch_task(samples=3, interval_ns=5 * MSEC), label="watch"
    )
    samples = tb.scheduler.run(task)[0]
    assert len(samples) == 3
    assert all(s.kernel.startswith("Linux") for s in samples)
    assert all("/" in s.filesystems for s in samples)
    assert samples[2].time_ns - samples[0].time_ns >= 10 * MSEC
    # Each sample recorded a span carrying its tracer-cursor window.
    spans = tb.obs.spans.find("monitor.sample", track="monitor")
    assert [s.attrs["sample"] for s in spans] == [0, 1, 2]
    assert all(s.end_ns is not None for s in spans)
    monitor.detach()


def test_exec_task_matches_sync_exec():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, exec_device=True)
    task = tb.scheduler.spawn(session.exec_task("echo hello"), label="exec")
    result = tb.scheduler.run(task)[0]
    assert result.ok and result.output == "hello"
    session.detach()


def test_monitor_requires_attach():
    tb = Testbed()
    monitor = GuestMonitor(tb.vmsh())
    with pytest.raises(VmshError, match="not attached"):
        monitor.sample()
