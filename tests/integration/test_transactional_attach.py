"""Transactional attach: rollback, retry, backoff and session scoping."""

import pytest

from repro.errors import PermanentFaultError, TransientFaultError
from repro.sim.faults import FaultPlan, FaultSpec, PERMANENT
from repro.testbed import Testbed


# -- transport="auto": the failed mmio attempt must leave no residue --------

def test_auto_transport_rolls_back_mmio_before_pci_retry():
    """Cloud Hypervisor's MSI-X-only irqchip fails the mmio attempt at
    KVM_IRQFD; the PCI retry must start from pristine state."""
    tb = Testbed(trace=True)
    hv = tb.launch_cloud_hypervisor()
    fds_before = len(hv.process.fds)
    slots_before = len(hv.vm.memslots())

    session = tb.vmsh().attach(hv.pid, transport="auto")
    assert session.report.transport == "pci"

    # The mmio attempt was rolled back in full before the PCI attempt:
    # only MSI routes exist, no pin-based GSI routes leaked...
    assert hv.vm.irq_routes == {}
    assert len(hv.vm._msi_routes) == 2            # console + blk
    # ...the hypervisor's fd table carries no leftover injected fds...
    assert len(hv.process.fds) == fds_before
    # ...and exactly one new memslot exists (the library).
    assert len(hv.vm.memslots()) == slots_before + 1

    # Trace shows the failed transaction unwinding before the retry.
    events = tb.tracer.events
    rollbacks = tb.tracer.find("txn", "rollback")
    commits = tb.tracer.find("txn", "commit")
    assert len(rollbacks) == 1 and len(commits) == 1
    assert rollbacks[0].detail["failed_step"] == "create_device_fds"
    assert events.index(rollbacks[0]) < events.index(commits[0])

    assert session.console.run_command("echo pci").output == "pci"


# -- per-session privilege scoping ------------------------------------------

def test_privileges_restored_on_detach_and_reattach_works():
    """§4.5 capabilities are dropped per-session: detach re-grants them
    so the *same* VMSH process can attach again."""
    tb = Testbed()
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    session = vmsh.attach(hv.pid)
    assert not vmsh.process.has_capability("CAP_BPF")
    assert not vmsh.process.has_capability("CAP_SYS_ADMIN")
    session.detach()
    assert vmsh.process.has_capability("CAP_BPF")
    assert vmsh.process.has_capability("CAP_SYS_ADMIN")
    second = vmsh.attach(hv.pid)
    assert second.console.run_command("echo again").output == "again"


def test_failure_after_privilege_drop_regrants_on_rollback(monkeypatch):
    """The caps are dropped at the *last* pipeline step, so the only
    failure point after them is the commit itself — fail it and the
    rollback must re-grant what was dropped."""
    tb = Testbed()
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    from repro.core.txn import AttachTransaction

    def failing_commit(self):
        raise RuntimeError("synthetic failure after drop_privileges")

    monkeypatch.setattr(AttachTransaction, "commit", failing_commit)
    with pytest.raises(RuntimeError, match="synthetic failure"):
        vmsh.attach(hv.pid)
    assert vmsh.process.has_capability("CAP_BPF")
    assert vmsh.process.has_capability("CAP_SYS_ADMIN")
    assert hv.process.tracer is None
    assert hv.guest.panicked is None
    monkeypatch.undo()
    session = vmsh.attach(hv.pid)
    assert session.console.run_command("echo ok").output == "ok"


# -- detach fd hygiene -------------------------------------------------------

def test_detach_closes_session_fds_ioregionfd_mode():
    tb = Testbed(ioregionfd=True)
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    session = vmsh.attach(hv.pid)
    assert session.report.mmio_mode == "ioregionfd"
    owned = list(session._vmsh_fds)
    assert owned, "ioregionfd session must own device fds + socket"
    assert all(fd in vmsh.process.fds for fd in owned)
    session.detach()
    assert all(fd not in vmsh.process.fds for fd in owned)
    assert session._vmsh_fds == []
    session.detach()  # idempotent


def test_detach_closes_session_fds_wrap_mode():
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu()
    vmsh = tb.vmsh()
    session = vmsh.attach(hv.pid)
    assert session.report.mmio_mode == "wrap_syscall"
    owned = list(session._vmsh_fds)
    assert owned and all(fd in vmsh.process.fds for fd in owned)
    session.detach()
    assert all(fd not in vmsh.process.fds for fd in owned)
    assert hv.process.tracer is None
    session.detach()  # idempotent


# -- deterministic retry/backoff ---------------------------------------------

def test_retry_backoff_is_exponential_on_the_sim_clock():
    tb = Testbed(trace=True)
    hv = tb.launch_qemu()
    plan = FaultPlan(
        [FaultSpec(site="attach.discover", occurrence=1, count=2)]
    )
    with tb.host.faults.plan(plan):
        session = tb.vmsh().attach(hv.pid, retries=3, retry_backoff_ns=100_000)
    retries = tb.tracer.find("vmsh", "attach_retry")
    assert [e.detail["backoff_ns"] for e in retries] == [100_000, 200_000]
    assert [e.detail["attempt"] for e in retries] == [1, 2]
    assert all(e.detail["site"] == "attach.discover" for e in retries)
    # The waits really elapsed on the virtual clock.
    assert retries[1].time_ns >= retries[0].time_ns + 100_000
    assert session.console.run_command("echo retried").output == "retried"


def test_deadline_exhausted_reraises_transient_fault():
    tb = Testbed(trace=True)
    hv = tb.launch_qemu()
    plan = FaultPlan(
        [FaultSpec(site="attach.discover", occurrence=1, count=10)]
    )
    with tb.host.faults.plan(plan):
        with pytest.raises(TransientFaultError):
            tb.vmsh().attach(hv.pid, retries=10, deadline_ns=1)
    # The budget was blown before the first backoff: no retry happened.
    assert tb.tracer.find("vmsh", "attach_retry") == []


def test_zero_retries_propagates_first_transient_fault():
    tb = Testbed()
    hv = tb.launch_qemu()
    plan = FaultPlan([FaultSpec(site="attach.analyse", occurrence=1)])
    with tb.host.faults.plan(plan):
        with pytest.raises(TransientFaultError):
            tb.vmsh().attach(hv.pid)


def test_negative_retries_rejected():
    tb = Testbed()
    hv = tb.launch_qemu()
    from repro.errors import VmshError

    with pytest.raises(VmshError):
        tb.vmsh().attach(hv.pid, retries=-1)


# -- guest page tables are journaled and restored ----------------------------

def test_rollback_restores_guest_page_tables_bit_identical():
    """A fault after load_library must undo every page-table word VMSH
    wrote while mapping the library (and delete the library memslot)."""
    tb = Testbed()
    hv = tb.launch_qemu()
    mem = hv.vm.guest_memory()
    pml4_before = mem.read(hv.guest.cr3, 4096)
    slots_before = [
        (s.slot, s.gpa, s.size, s.hva) for s in hv.vm.memslots()
    ]
    plan = FaultPlan([FaultSpec(site="attach.hijack", kind=PERMANENT)])
    with tb.host.faults.plan(plan):
        with pytest.raises(PermanentFaultError):
            tb.vmsh().attach(hv.pid)
    assert mem.read(hv.guest.cr3, 4096) == pml4_before
    assert [
        (s.slot, s.gpa, s.size, s.hva) for s in hv.vm.memslots()
    ] == slots_before
    assert hv.guest.panicked is None
