"""Mechanism-level assertions the paper makes about *why* results hold.

These check counters, not outcomes: context-switch ratios, VMEXIT
funnelling, ptrace stop accounting, multi-vCPU behaviour.
"""

import pytest

from repro.bench.harness import make_env
from repro.bench.workloads.fio import iops_job, run_fio
from repro.testbed import Testbed
from repro.units import MiB


def _ctx_switches_for(env_name: str) -> tuple:
    env = make_env(env_name, disk_size=64 * MiB)
    env.testbed.costs.reset_counters()
    run_fio(env, iops_job("read", total=1 * MiB))
    counters = env.testbed.costs.counters
    return counters.get("ctx_switch", 0), counters


def test_vmsh_blk_doubles_context_switches():
    """§6.3-C: "we measure twice as many context switches for vmsh-blk
    compared to qemu-blk" over the same workload.

    In our accounting, qemu-blk's switches are the kernel->hypervisor
    returns (``ctx_switch``); vmsh-blk's are the kernel-mediated
    transitions in and out of the *VMSH* process: the forwarded exits
    (``ioregionfd_msg``) plus the cross-process memory syscalls
    (``procvm_copy``) its device must make for every request.
    """
    qemu_switches, _ = _ctx_switches_for("qemu-blk")
    vmsh_switches, vmsh_counters = _ctx_switches_for("vmsh-blk-ioregionfd")
    vmsh_crossings = (
        vmsh_switches
        + vmsh_counters.get("ioregionfd_msg", 0)
        + vmsh_counters.get("procvm_copy", 0)
    )
    assert vmsh_crossings >= 2 * max(1, qemu_switches)
    # And the exit count itself is identical: the device interface is
    # the same, only who serves it differs.
    assert vmsh_counters.get("vmexit") is not None


def test_ioregionfd_exits_never_wake_hypervisor():
    """The guest's own device keeps its exit count; vmsh traffic is
    filtered in the kernel (§6.3-B)."""
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition(64 * MiB))
    session = tb.vmsh().attach(hv.pid)
    tb.costs.reset_counters()
    session.console.run_command("echo hi")
    # Console traffic used ioregionfd messages, zero ptrace stops.
    assert tb.costs.count("ioregionfd_msg") > 0
    assert tb.costs.count("ptrace_stop") == 0


def test_wrap_syscall_charges_stops_per_exit():
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu(disk=tb.nvme_partition(64 * MiB))
    session = tb.vmsh().attach(hv.pid)
    tb.costs.reset_counters()
    session.console.run_command("echo hi")
    assert tb.costs.count("ptrace_stop") > 0
    assert tb.costs.count("ioregionfd_msg") == 0


def test_wrap_syscall_taxes_unrelated_hypervisor_io():
    """The guest's own disk pays ptrace stops under wrap_syscall."""
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu(disk=tb.nvme_partition(64 * MiB))
    session = tb.vmsh().attach(hv.pid)
    guest = hv.guest
    fs = guest.make_fs_on("vda", "xfs")
    vfs = guest.mount_filesystem(fs, "/mnt/t")
    tb.costs.reset_counters()
    vfs.write_file("/mnt/t/f", b"\xaa" * 8192)
    fs.sync_all()
    assert tb.costs.count("ptrace_stop") > 0


def test_multi_vcpu_attach():
    """The paper's performance VMs run 4 vCPUs; attach must cope."""
    tb = Testbed()
    hv = tb.launch_qemu(vcpus=4)
    assert len(hv.vm.vcpus) == 4
    session = tb.vmsh().attach(hv.pid)
    assert session.console.run_command("echo smp").output == "smp"
    # Only vCPU 0 was hijacked; the others never left the idle loop.
    for vcpu in hv.vm.vcpus:
        assert vcpu.regs["rip"] == hv.guest.idle_vaddr


def test_multi_vcpu_wrap_mode_traces_every_vcpu_thread():
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_qemu(vcpus=4)
    session = tb.vmsh().attach(hv.pid)
    traced = [
        t for t in hv.process.threads if tb.host.thread_is_traced(t)
    ]
    vcpu_threads = [t for t in hv.process.threads if "CPU" in t.name]
    assert set(vcpu_threads) <= set(traced)


def test_attach_time_budget():
    """Attach completes in tens of virtual milliseconds — on the same
    order as the paper's interactive-use expectation."""
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid)
    assert session.report.attach_ns < 200_000_000  # < 200 ms virtual


def test_attach_leaves_guest_time_unstolen():
    """After setup (ioregionfd), guest-side work causes no vmsh costs."""
    tb = Testbed()
    hv = tb.launch_qemu(disk=tb.nvme_partition(64 * MiB))
    session = tb.vmsh().attach(hv.pid)
    guest = hv.guest
    fs = guest.make_fs_on("vda", "xfs")
    vfs = guest.mount_filesystem(fs, "/mnt/t")
    tb.costs.reset_counters()
    vfs.write_file("/mnt/t/f", b"\xbb" * 65536)
    fs.sync_all()
    assert tb.costs.count("ptrace_stop") == 0
    assert tb.costs.count("procvm_copy") == 0
