"""The VirtIO-PCI/MSI-X transport extension (§6.2 future work).

The paper leaves Cloud Hypervisor unsupported because its irqchip has
no GSI pins.  The extension routes interrupts as MSI messages
(``KVM_IRQFD_MSI``) and serves PCI config space from claimed ECAM
slots, so the same non-cooperative attach works there too.
"""

import pytest

from repro.errors import HypervisorNotSupportedError
from repro.testbed import Testbed
from repro.virtio.pci import (
    CFG_BAR0,
    CFG_VENDOR_ID,
    EMPTY_SLOT,
    GuestPciProbe,
    PciVirtioFunction,
    VIRTIO_PCI_DEVICE_BASE,
    VIRTIO_PCI_VENDOR,
    address_slot,
    slot_address,
)


def test_slot_address_roundtrip():
    for slot in (0, 1, 0xF0, 255):
        assert address_slot(slot_address(slot)) == slot
    from repro.errors import VirtioError

    with pytest.raises(VirtioError):
        slot_address(256)
    with pytest.raises(VirtioError):
        address_slot(0x1000)


def test_pci_attach_on_qemu():
    """The PCI transport also works on ordinary hypervisors."""
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, transport="pci")
    assert session.report.transport == "pci"
    assert session.console.run_command("echo over-pci").output == "over-pci"
    assert any("pci slot" in line and "MSI-X" in line for line in hv.guest.klog)


def test_cloud_hypervisor_attach_via_pci():
    """The headline of the extension: Cloud Hypervisor becomes attachable."""
    tb = Testbed()
    hv = tb.launch_cloud_hypervisor()
    session = tb.vmsh().attach(hv.pid, transport="pci")
    assert session.report.transport == "pci"
    assert session.console.run_command("echo chv").output == "chv"
    assert hv.guest.panicked is None


def test_cloud_hypervisor_auto_falls_back_to_pci():
    tb = Testbed()
    hv = tb.launch_cloud_hypervisor()
    session = tb.vmsh().attach(hv.pid, transport="auto")
    assert session.report.transport == "pci"


def test_cloud_hypervisor_still_unsupported_on_mmio():
    """Paper fidelity: the default (mmio) transport fails as in Table 1."""
    tb = Testbed()
    hv = tb.launch_cloud_hypervisor()
    with pytest.raises(HypervisorNotSupportedError):
        tb.vmsh().attach(hv.pid)  # default transport="mmio"


def test_auto_prefers_mmio_when_available():
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, transport="auto")
    assert session.report.transport == "mmio"


def test_pci_with_wrap_syscall_dispatch():
    """Config-space exits can also be stolen by the ptrace wrapper."""
    tb = Testbed(ioregionfd=False)
    hv = tb.launch_cloud_hypervisor()
    session = tb.vmsh().attach(hv.pid, transport="pci")
    assert session.mmio_mode == "wrap_syscall"
    assert session.console.run_command("echo wrapped-pci").output == "wrapped-pci"


def test_config_space_identification():
    """Guest-side probe decodes vendor/device/BAR correctly."""
    tb = Testbed()
    hv = tb.launch_qemu()
    session = tb.vmsh().attach(hv.pid, transport="pci")
    probe = GuestPciProbe(hv.guest)
    from repro.core.libbuild import VMSH_PCI_BLK_SLOT, VMSH_PCI_CONSOLE_SLOT

    console_fn = probe.probe_slot(VMSH_PCI_CONSOLE_SLOT)
    blk_fn = probe.probe_slot(VMSH_PCI_BLK_SLOT)
    assert console_fn is not None and blk_fn is not None
    assert console_fn["virtio_id"] == 3      # console
    assert blk_fn["virtio_id"] == 2          # block
    assert console_fn["bar0"] != blk_fn["bar0"]


def test_msi_interrupts_bypass_gsi_routing():
    """MSI delivery works on a VM with gsi_routing_supported=False."""
    tb = Testbed()
    hv = tb.launch_cloud_hypervisor()
    assert not hv.vm.gsi_routing_supported
    received = []
    original_sink = hv.vm.guest_irq_sink

    def spy(vector):
        received.append(vector)
        if original_sink:
            original_sink(vector)

    hv.vm.guest_irq_sink = spy
    session = tb.vmsh().attach(hv.pid, transport="pci")
    session.console.run_command("echo irq")
    from repro.kvm.api import VmFd

    assert any(v >= VmFd.MSI_VECTOR_BASE for v in received)


def test_pci_function_config_semantics():
    """Unit-level: the function's config registers behave like PCI."""
    from repro.sim.clock import Clock
    from repro.sim.costs import CostModel
    from repro.virtio.blk import MappedImageBackend, VirtioBlkDevice
    from repro.virtio.memio import GuestMemoryAccessor

    class NullAccessor(GuestMemoryAccessor):
        def read(self, gpa, length):
            return b"\x00" * length

        def write(self, gpa, data):
            pass

    costs = CostModel(Clock())
    device = VirtioBlkDevice(
        NullAccessor(), lambda: None, costs,
        MappedImageBackend(costs, b"\x00" * 4096),
    )
    fn = PciVirtioFunction(slot=5, device=device, bar0=0xE0000000, msi_message=9)
    id_word = fn.config_read(CFG_VENDOR_ID)
    assert id_word & 0xFFFF == VIRTIO_PCI_VENDOR
    assert id_word >> 16 == VIRTIO_PCI_DEVICE_BASE + 2
    assert fn.config_read(CFG_BAR0) == 0xE0000000
    # Memory decoding can be turned off, blocking BAR access.
    fn.config_write(0x04, 0)
    from repro.errors import VirtioError

    with pytest.raises(VirtioError):
        fn.bar_read(0)
    fn.config_write(0x04, 1 << 1)
    fn.bar_read(0)  # magic register; must not raise
