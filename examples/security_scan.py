#!/usr/bin/env python3
"""Use-case #3 (§6.5): agent-less package vulnerability scanning.

Providers scan container images for CVEs as a service; VMSH extends
that to VMs without installing anything in them.  The scanner attaches
with an image that carries the Alpine security database, reads the
guest's apk database through the overlay and reports vulnerable
packages.

Run:  python examples/security_scan.py
"""

from repro.testbed import Testbed
from repro.usecases.scanner import SecurityScanner, alpine_installed_db


def main() -> None:
    testbed = Testbed()

    print("=== an Alpine guest with a few stale packages ===")
    installed = {
        "alpine-baselayout": "3.2.0-r16",
        "apk-tools": "2.12.5-r0",        # CVE-2021-36159
        "busybox": "1.34.1-r2",          # CVE-2021-42378 / -42386
        "musl": "1.2.2-r3",              # fixed
        "openssl": "1.1.1k-r0",          # CVE-2021-3711 / -3712
        "zlib": "1.2.12-r1",             # fixed
    }
    hypervisor = testbed.launch_qemu(root_files={
        "/lib/apk/db": None,
        "/lib/apk/db/installed": alpine_installed_db(installed),
    })
    for name, version in installed.items():
        print(f"  {name}-{version}")

    print("\n=== scanning via VMSH (no agent in the guest) ===")
    scanner = SecurityScanner(testbed.vmsh())
    report = scanner.scan(hypervisor)

    print(f"scanned {report.packages_scanned} packages")
    if not report.vulnerabilities:
        print("no known vulnerabilities")
    for vuln in report.vulnerabilities:
        print(
            f"  VULNERABLE {vuln.package}-{vuln.installed}: {vuln.cve} "
            f"(fixed in {vuln.fixed})"
        )
    assert report.vulnerable_packages == ["apk-tools", "busybox", "openssl"]


if __name__ == "__main__":
    main()
