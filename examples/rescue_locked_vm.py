#!/usr/bin/env python3
"""Use-case #2 (§6.5): rescue a VM whose owner is locked out.

A customer forgot their root password.  Existing provider workflows
reboot the VM into a recovery image — losing all runtime state.  With
VMSH the provider attaches a rescue image to the *running* VM and
resets the password in place.

Run:  python examples/rescue_locked_vm.py
"""

from repro.testbed import Testbed
from repro.usecases.rescue import RescueService, verify_password_reset


def main() -> None:
    testbed = Testbed()

    print("=== the customer's VM (running production workload) ===")
    hypervisor = testbed.launch_qemu()
    guest = hypervisor.guest
    shadow_before = guest.kernel_vfs.read_file("/etc/shadow").decode()
    print("shadow before:", shadow_before.splitlines()[0])
    processes_before = [p.name for p in guest.processes.alive()]
    print("guest processes:", processes_before)

    print("\n=== provider-side rescue, no reboot, no agent ===")
    service = RescueService(testbed.vmsh())
    report = service.reset_password(hypervisor, "root", "correct-horse-battery")
    print("rescue shell said:", report.shell_output)
    print("shadow after:", report.shadow_entry[:50], "...")

    print("\n=== verification ===")
    ok = verify_password_reset(report, "root")
    print("password replaced:", ok)
    print("VM stayed running:", report.vm_stayed_running)
    print(
        "same processes alive:",
        [p.name for p in guest.processes.alive() if p.name in processes_before],
    )
    assert ok


if __name__ == "__main__":
    main()
