#!/usr/bin/env python3
"""De-bloat VM images (§6.4): trace what the app opens, strip the rest.

Walks the Figure 8 pipeline for a handful of popular images: boot the
image as a VM, trace every path the application opens (sysdig-style,
from the initial ramdisk), rebuild a minimal image from the traced
closure, and prove the app still runs.  The removable remainder —
package managers, coreutils, shells, docs — is exactly what VMSH can
re-attach on demand.

Run:  python examples/debloat_pipeline.py
"""

from repro.image.debloat import debloat_image, debloat_top40, summarize
from repro.image.docker import top40_images
from repro.testbed import Testbed


def main() -> None:
    testbed = Testbed()
    images = {img.name: img for img in top40_images()}

    print("=== single image, step by step: nginx ===")
    result = debloat_image(images["nginx"], testbed=testbed)
    print(f"files before : {result.files_before}")
    print(f"files after  : {result.files_after}")
    print(f"size before  : {result.size_before >> 20} MB")
    print(f"size after   : {result.size_after >> 20} MB "
          f"(-{result.reduction * 100:.1f}%)")
    print(f"app still works on the minimal image: {result.app_still_works}")

    print("\n=== the full top-40 sweep (Figure 8) ===")
    results = debloat_top40(testbed)
    for r in sorted(results, key=lambda r: r.reduction):
        bar = "#" * int(r.reduction * 40)
        print(f"{r.image:14s} -{r.reduction * 100:5.1f}% {bar}")

    stats = summarize(results)
    print(f"\naverage reduction: {stats['mean_reduction'] * 100:.1f}% "
          "(paper: 60%)")
    print(f"images reduced <10%: {stats['below_10pct']} "
          "(paper: 3, the static-Go binaries)")
    print(f"all apps verified working: {stats['all_apps_work']}")


if __name__ == "__main__":
    main()
