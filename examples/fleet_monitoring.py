#!/usr/bin/env python3
"""Fleet monitoring + the extension surface beyond the paper.

Combines the pieces this repository adds on top of the EuroSys'22
prototype:

* the **vm-exec device** (§2.2's envisioned abstraction) for one-shot
  out-of-band commands,
* the **GuestMonitor** dependability service (§2.3) sampling process
  lists and filesystem usage across a small VM fleet,
* the **VirtIO-PCI/MSI-X transport**, so even Cloud Hypervisor — which
  the paper leaves unsupported — joins the fleet,
* the **seccomp-aware injection heuristic**, so a Firecracker shipping
  the proposed VMSH-compatible profile is monitored *without*
  disabling its sandbox.

Run:  python examples/fleet_monitoring.py
"""

from repro.testbed import Testbed
from repro.units import MSEC
from repro.usecases.monitoring import GuestMonitor


def main() -> None:
    testbed = Testbed()

    print("=== a mixed fleet ===")
    fleet = [
        ("qemu", testbed.launch_qemu(), {}),
        ("cloud-hypervisor", testbed.launch_cloud_hypervisor(),
         {"transport": "pci"}),
        ("firecracker (seccomp ON)", testbed.launch_firecracker(
            seccomp=True, vmsh_seccomp_profile=True), {"seccomp_aware": True}),
    ]
    for name, hv, _ in fleet:
        print(f"  {name:28s} pid {hv.pid}, kernel {hv.guest.version}")

    print("\n=== sampling every VM, agent-less ===")
    for name, hv, attach_kwargs in fleet:
        session = testbed.vmsh().attach(hv.pid, exec_device=True, **attach_kwargs)
        print(f"\n[{name}] transport={session.report.transport} "
              f"dispatch={session.report.mmio_mode}")
        uname = session.exec("uname")
        print(f"  kernel : {uname.output}")
        ps = session.exec("ps")
        print(f"  processes ({len(ps.output.splitlines()) - 1}):")
        for line in ps.output.splitlines():
            print(f"    {line}")
        df = session.exec(["df", "/var/lib/vmsh"])
        print(f"  guest rootfs: {df.output}")
        session.detach()

    print("\n=== periodic watch on one guest ===")
    monitor = GuestMonitor(testbed.vmsh())
    monitor.attach(fleet[0][1])
    samples = monitor.watch(samples=3, interval_ns=250 * MSEC)
    for sample in samples:
        print(f"  t={sample.time_ns / 1e6:9.2f} ms  "
              f"{sample.process_count} processes, kernel '{sample.kernel}'")
    monitor.detach()


if __name__ == "__main__":
    main()
