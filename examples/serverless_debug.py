#!/usr/bin/env python3
"""Use-case #1 (§6.5): debug a faulty lambda in a vHive-like stack.

FaaS platforms are hard to debug: the developer never gets a shell in
the microVM that runs their function.  This example deploys a function
to a simulated vHive/Firecracker platform, triggers an error, then
uses VMSH to drop an interactive debug shell into the *exact* microVM
that served the failing request — pinned against scale-down while the
developer investigates.

Run:  python examples/serverless_debug.py
"""

from repro.testbed import Testbed
from repro.units import SEC
from repro.usecases.serverless import ServerlessDebugger, VHivePlatform


def thumbnail_handler(payload: dict) -> dict:
    image = payload["image"]             # KeyError if the field is missing
    return {"thumbnail": f"{image['w'] // 4}x{image['h'] // 4}"}


def main() -> None:
    testbed = Testbed()
    platform = VHivePlatform(testbed)

    print("=== deploy + invoke ===")
    platform.deploy("thumbnail", thumbnail_handler)
    print("ok :", platform.invoke("thumbnail", {"image": {"w": 800, "h": 600}}))
    print("bad:", platform.invoke("thumbnail", {"url": "https://broken"}))

    print("\n=== platform logs ===")
    for line in platform.logs:
        print(" ", line)

    print("\n=== attach a debug shell to the faulty instance ===")
    debugger = ServerlessDebugger(platform)
    debug = debugger.debug_shell()
    print("error being debugged:", debug.error_log.message)
    print("instance:", debug.instance.instance_id,
          "(vmm pid", debug.instance.hypervisor.pid, ")")

    console = debug.session.console
    print("$ cat /etc/motd ->", console.run_command("cat /etc/motd").output)
    print("$ ps ->")
    for line in console.run_command("ps").output.splitlines():
        print("   ", line)

    print("\n=== scale-down protection ===")
    testbed.clock.advance(10 * SEC)       # way past the idle timeout
    print("scale-down while debugging:", platform.scale_down() or "nothing (pinned)")
    debug.close()
    print("scale-down after closing:  ", platform.scale_down())


if __name__ == "__main__":
    main()
