#!/usr/bin/env python3
"""Quickstart: attach a shell to a running VM with VMSH.

This walks the paper's Figure 1 scenario end to end on the simulated
testbed: boot a QEMU/KVM guest, attach VMSH non-cooperatively (no
agent, no hypervisor API), and interact with a shell that runs inside
a container overlay on top of the guest kernel.

Run:  python examples/quickstart.py
"""

from repro.testbed import Testbed
from repro.units import MiB


def main() -> None:
    # A host machine with KVM (and the ioregionfd patch, like the
    # paper's evaluation host).
    testbed = Testbed(ioregionfd=True)

    # Boot a guest the usual way: a QEMU process with a virtio disk.
    print("=== booting a QEMU/KVM guest ===")
    hypervisor = testbed.launch_qemu(disk=testbed.nvme_partition(64 * MiB))
    print(f"hypervisor pid: {hypervisor.pid}")
    print(f"guest kernel:   {hypervisor.guest.version}")

    # Attach VMSH.  Note the only input is the *process id* — VMSH
    # discovers the VM through /proc, ptrace and eBPF on its own.
    print("\n=== attaching VMSH ===")
    vmsh = testbed.vmsh()
    session = vmsh.attach(hypervisor.pid)
    report = session.report
    print(f"kernel found at   {report.kernel_vbase:#x} (KASLR)")
    print(f"ksymtab layout    {report.ksymtab_layout}")
    print(f"detected version  {report.kernel_version}")
    print(f"library mapped at {report.lib_vaddr:#x}")
    print(f"MMIO dispatch     {report.mmio_mode}")
    print(f"attach time       {report.attach_ns / 1e6:.2f} ms (virtual)")

    # What the guest saw (kernel log):
    print("\n=== guest dmesg ===")
    for line in hypervisor.guest.klog:
        print(f"  {line}")

    # Use the shell: the overlay root is the VMSH tool image; the
    # original guest filesystem is under /var/lib/vmsh.
    print("\n=== interactive console ===")
    for command in (
        "ls /",
        "cat /etc/os-release",
        "ls /var/lib/vmsh",
        "cat /var/lib/vmsh/etc/hostname",
        "mount",
        "ps",
    ):
        result = session.console.run_command(command)
        print(f"$ {command}")
        for line in result.output.splitlines():
            print(f"  {line}")

    session.detach()
    print("\ndetached; guest still running, untouched.")


if __name__ == "__main__":
    main()
